"""Tests for the simulated processor, cycle model, memory model and OS interference."""

import pytest

from repro.hardware import (CycleModel, EventCounters, MainMemory, MemorySpec,
                            OSInterference, OSInterferenceConfig, OverlapModel,
                            PENTIUM_II_XEON, SimulatedProcessor, Trace, replay)
from repro.hardware.events import (Branch, BulkBranches, BulkDataRefs, CodeFetch,
                                   DataRead, DataWrite, RecordBoundary, ResourceStall,
                                   RetireInstructions)


class TestProcessorCounters:
    def test_data_read_updates_cache_and_tlb_counters(self, processor):
        processor.data_read(0x2000_0000, 4)
        counters = processor.counters
        assert counters.get("DATA_MEM_REFS") == 1
        assert counters.get("DCU_LINES_IN") == 1
        assert counters.get("L2_DATA_MISS") == 1
        assert counters.get("DTLB_MISS") == 1
        processor.data_read(0x2000_0000, 4)
        assert counters.get("DATA_MEM_REFS") == 2
        assert counters.get("DCU_LINES_IN") == 1        # second access hits

    def test_fetch_code_counts_lines_and_misses(self, processor):
        lines = (0x0800_0000, 0x0800_0020, 0x0800_0040)
        processor.fetch_code(lines)
        counters = processor.counters
        assert counters.get("IFU_IFETCH") == 3
        assert counters.get("IFU_IFETCH_MISS") == 3
        assert counters.get("L2_IFETCH_MISS") == 3
        assert counters.get("ITLB_MISS") == 1           # all three lines share a page
        processor.fetch_code(lines)
        assert counters.get("IFU_IFETCH_MISS") == 3     # warm now

    def test_retire_applies_default_uop_expansion(self, processor):
        processor.retire(1000)
        expected = round(1000 * PENTIUM_II_XEON.pipeline.uops_per_instruction)
        assert processor.counters.get("UOPS_RETIRED") == expected

    def test_branch_counters(self, processor):
        processor.branch(0x100, taken=True)
        processor.branch(0x100, taken=True)
        counters = processor.counters
        assert counters.get("BR_INST_RETIRED") == 2
        assert counters.get("BR_TAKEN_RETIRED") == 2
        assert counters.get("BTB_MISSES") >= 1

    def test_count_branches_bulk(self, processor):
        processor.count_branches(100, taken=60, mispredictions=5, btb_misses=50)
        counters = processor.counters
        assert counters.get("BR_INST_RETIRED") == 100
        assert counters.get("BR_MISS_PRED_RETIRED") == 5
        assert counters.get("BTB_MISSES") == 50

    def test_resource_stalls_accumulate(self, processor):
        processor.add_resource_stalls(10, 5, 2)
        counters = processor.counters
        assert counters.get("PARTIAL_RAT_STALLS") == 10
        assert counters.get("FU_CONTENTION_STALLS") == 5
        assert counters.get("ILD_STALL") == 2
        assert counters.get("RESOURCE_STALLS") == 17

    def test_finalize_produces_cycles_and_is_idempotent(self, processor):
        processor.fetch_code((0x0800_0000,))
        processor.retire(300)
        processor.data_read(0x2000_0000)
        first = processor.finalize()
        second = processor.finalize()
        assert first.get("CPU_CLK_UNHALTED") == second.get("CPU_CLK_UNHALTED") > 0
        assert first.get("L2_LINES_IN") == second.get("L2_LINES_IN")

    def test_reset_clears_everything(self, processor):
        processor.data_read(0x2000_0000)
        processor.retire(10)
        processor.finalize()
        processor.reset()
        assert processor.counters.get("INST_RETIRED") == 0
        assert processor.caches.l1d.resident_lines() == 0

    def test_reset_counters_keeps_cache_contents(self, processor):
        processor.data_read(0x2000_0000)
        processor.reset_counters()
        assert processor.counters.get("DCU_LINES_IN") == 0
        # The line is still resident: re-reading it does not miss.
        processor.data_read(0x2000_0000)
        assert processor.counters.get("DCU_LINES_IN") == 0


class TestCycleModel:
    def test_breakdown_matches_table_4_2_formulae(self):
        counters = EventCounters.from_dict({
            "UOPS_RETIRED": 3000, "DCU_LINES_IN": 10, "L2_DATA_MISS": 4,
            "L2_IFETCH_MISS": 2, "IFU_MEM_STALL": 120, "ITLB_MISS": 1,
            "DTLB_MISS": 3, "BR_MISS_PRED_RETIRED": 6,
            "PARTIAL_RAT_STALLS": 50, "FU_CONTENTION_STALLS": 20, "ILD_STALL": 10,
        })
        model = CycleModel(PENTIUM_II_XEON, OverlapModel(0, 0, 0, 0))
        breakdown = model.assemble(counters)
        assert breakdown.computation == pytest.approx(1000.0)
        assert breakdown.l1d == pytest.approx((10 - 4) * 4)
        assert breakdown.l2d == pytest.approx(4 * 65)
        assert breakdown.l2i == pytest.approx(2 * 65)
        assert breakdown.l1i == pytest.approx(120)
        assert breakdown.itlb == pytest.approx(32)
        assert breakdown.branch == pytest.approx(6 * 17)
        assert breakdown.resource == pytest.approx(80)
        assert breakdown.overlap == 0
        assert breakdown.total == pytest.approx(breakdown.computation + breakdown.memory
                                                + breakdown.dtlb + breakdown.branch
                                                + breakdown.resource)

    def test_overlap_reduces_total_but_not_components(self):
        counters = EventCounters.from_dict({"UOPS_RETIRED": 300, "DCU_LINES_IN": 100,
                                            "L2_DATA_MISS": 50})
        plain = CycleModel(PENTIUM_II_XEON, OverlapModel(0, 0, 0, 0)).assemble(counters)
        overlapped = CycleModel(PENTIUM_II_XEON).assemble(counters)
        assert overlapped.total < plain.total
        assert overlapped.l2d == plain.l2d

    def test_total_never_below_computation(self):
        counters = EventCounters.from_dict({"UOPS_RETIRED": 3000})
        breakdown = CycleModel(PENTIUM_II_XEON,
                               OverlapModel(1.0, 1.0, 1.0, 1.0)).assemble(counters)
        assert breakdown.total >= breakdown.computation

    def test_overlap_model_validates_fractions(self):
        with pytest.raises(ValueError):
            OverlapModel(l1d_hidden_fraction=1.5)


class TestMainMemory:
    def test_fill_latency_and_traffic(self):
        memory = MainMemory(MemorySpec(latency_cycles=65), line_bytes=32)
        assert memory.fill(3) == 195
        memory.writeback(2)
        assert memory.stats.bytes_transferred == 5 * 32
        assert memory.stats.reads == 3

    def test_bandwidth_utilisation_and_latency_bound(self):
        memory = MainMemory(MemorySpec(latency_cycles=65,
                                       peak_bandwidth_bytes_per_cycle=2.0))
        memory.fill(10)   # 320 bytes
        assert memory.bandwidth_utilisation(1000) == pytest.approx(0.16)
        assert memory.is_latency_bound(1000)
        assert not memory.is_latency_bound(100)


class TestOSInterference:
    def test_interrupt_fires_every_interval(self):
        model = OSInterference(OSInterferenceConfig(interval_instructions=1000))
        assert model.note_instructions(999) == 0
        assert model.note_instructions(1) == 1
        assert model.note_instructions(2500) == 2
        assert model.interrupts == 3

    def test_disabled_model_never_fires(self):
        model = OSInterference(OSInterferenceConfig(enabled=False))
        assert model.note_instructions(10_000_000) == 0

    def test_processor_applies_interrupt_effects(self):
        config = OSInterferenceConfig(interval_instructions=1_000, l1i_flush_fraction=1.0)
        processor = SimulatedProcessor(os_interference=config)
        lines = tuple(0x0800_0000 + i * 32 for i in range(16))
        processor.fetch_code(lines)
        assert processor.counters.get("IFU_IFETCH_MISS") == 16
        processor.retire(2_000)                      # crosses the interrupt threshold
        processor.fetch_code(lines)                  # code was flushed -> misses again
        assert processor.counters.get("IFU_IFETCH_MISS") == 32
        assert processor.counters.get("OS_INTERRUPTS") == 0            # user bank untouched
        assert processor.counters.get("OS_INTERRUPTS", "SUP") == 2     # kernel bank counts them


class TestTraceReplay:
    def test_replay_reproduces_direct_counters(self):
        events = [
            CodeFetch((0x0800_0000, 0x0800_0020), instructions=100, uops=140),
            DataRead(0x2000_0000, 4),
            DataWrite(0x2000_0040, 8),
            BulkDataRefs(50),
            Branch(0x0800_0010, taken=True),
            BulkBranches(20, taken=12, mispredictions=1),
            RetireInstructions(200),
            ResourceStall(dependency_cycles=30, functional_unit_cycles=10, ild_cycles=5),
            RecordBoundary(),
        ]
        direct = SimulatedProcessor()
        direct.fetch_code((0x0800_0000, 0x0800_0020))
        direct.retire(100, 140)
        direct.data_read(0x2000_0000, 4)
        direct.data_write(0x2000_0040, 8)
        direct.count_data_refs(50)
        direct.branch(0x0800_0010, True)
        direct.count_branches(20, taken=12, mispredictions=1)
        direct.retire(200)
        direct.add_resource_stalls(30, 10, 5)
        direct.record_done()

        replayed = SimulatedProcessor()
        replay(Trace(events), replayed)

        assert direct.finalize().as_dict() == replayed.finalize().as_dict()

    def test_trace_counts_by_type(self):
        trace = Trace([DataRead(0), DataRead(4), RecordBoundary()])
        assert trace.counts_by_type() == {"DataRead": 2, "RecordBoundary": 1}
        assert len(trace) == 3
