"""Differential + property harness for the micro-adaptive execution subsystem.

Contracts pinned here:

* ``adaptivity="off"`` is *bit-identical* to the engine without the knob --
  same rows, same cache/TLB/branch/event counts, same routine invocations --
  on every plan shape, layout, charge mode and worker count (the PR 3
  parallel contract extended by the adaptivity axis).  The off path does not
  construct a manager, so this is structural; the tests guard it.
* Every adaptive policy returns *identical result rows* to the static
  engine, for arbitrary conjunct sets -- including ``Not``, ``Between`` and
  ``None``-valued columns (SQL-style: comparisons against NULL are never
  satisfied, so conjuncts are total functions and conjunction commutes).
* Runtime statistics merge commutatively and round-trip through snapshots
  (they ride morsel specs and charge tapes across process boundaries).
* On the skewed-conjunct microworkload the greedy policy measurably reduces
  simulated branch mispredictions and total cycles versus the same charging
  under the static conjunct order.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import (AdaptiveExecution, EpsilonGreedyPolicy,
                            GreedyRankPolicy, RuntimeStatsCollector,
                            StaticPolicy, conjunct_key, flatten_conjuncts,
                            make_policy)
from repro.engine import Database, Session
from repro.query import (ExecutionConfig, SelectionQuery, avg, count_star,
                         range_predicate)
from repro.query.expressions import (And, Between, ColumnRef, Comparison,
                                     ComparisonOp, Const, Not, conjunction)
from repro.storage.schema import ColumnType
from repro.systems import SYSTEM_B
from repro.workloads.micro import MicroWorkload, MicroWorkloadConfig

R_ROWS = 420
A2_DOMAIN = 60


def build_database(layout_style: str = "nsm", seed: int = 42) -> Database:
    db = Database()
    columns = [("a1", ColumnType.INT32), ("a2", ColumnType.INT32),
               ("a3", ColumnType.INT32)]
    db.create_table("R", columns, record_size=100, layout_style=layout_style)
    rng = random.Random(seed)
    db.load("R", [(i + 1, rng.randint(1, A2_DOMAIN), rng.randint(0, 9_999))
                  for i in range(R_ROWS)])
    return db


def multi_conjunct_query() -> SelectionQuery:
    """A 3-conjunct filter in deliberately bad static order."""
    return SelectionQuery(
        table="R", aggregates=(avg("a3"), count_star()),
        predicate=conjunction(
            Comparison(ComparisonOp.LE, ColumnRef("a1"), Const(380)),
            Comparison(ComparisonOp.GE, ColumnRef("a3"), Const(5_000)),
            Comparison(ComparisonOp.LT, ColumnRef("a2"), Const(4))))


def hardware_counts(processor) -> dict:
    snap = processor.caches.snapshot()
    return {
        "l1d": snap.l1d, "l1i": snap.l1i, "l2": snap.l2,
        "dtlb": processor.dtlb.stats.as_dict(),
        "itlb": processor.itlb.stats.as_dict(),
        "branch": processor.branch_unit.stats.as_dict(),
        "user": dict(processor.counters.user),
        "sup": dict(processor.counters.sup),
    }


def run_query(query, adaptivity=None, layout="nsm", workers=1,
              charge_mode="span", batch_size=64, seed=42):
    """Execute one query; return (rows, hardware counts, invocations, session)."""
    db = build_database(layout_style=layout, seed=seed)
    kwargs = {} if adaptivity is None else {"adaptivity": adaptivity}
    session = Session(db, SYSTEM_B, os_interference=None, engine="vectorized",
                      batch_size=batch_size, charge_mode=charge_mode,
                      parallelism=workers, parallel_backend="inline",
                      morsel_pages=1 if workers > 1 else None, **kwargs)
    result = session.execute(query, warmup_runs=0)
    session.processor.finalize()
    counts = hardware_counts(session.processor)
    invocations = dict(session.context.op_invocations)
    collector = (session.adaptive.collector.snapshot()
                 if session.adaptive is not None else None)
    session.close()
    return result.rows, counts, invocations, collector


# ---------------------------------------------------------------------------
# adaptivity="off" is bit-identical to the engine without the knob
# ---------------------------------------------------------------------------
QUERIES = {
    "single_between": lambda: SelectionQuery(
        table="R", aggregates=(avg("a3"), count_star()),
        predicate=range_predicate("a2", 10, 40)),
    "multi_conjunct": multi_conjunct_query,
    "no_predicate": lambda: SelectionQuery(
        table="R", aggregates=(count_star(),)),
}


@pytest.mark.parametrize("layout", ("nsm", "pax"))
@pytest.mark.parametrize("shape", sorted(QUERIES))
def test_off_identical_to_unconfigured_engine(shape, layout):
    query = QUERIES[shape]()
    baseline = run_query(query, adaptivity=None, layout=layout)
    off = run_query(query, adaptivity="off", layout=layout)
    assert off[:3] == baseline[:3]


@pytest.mark.parametrize("charge_mode", ("span", "per_address"))
@pytest.mark.parametrize("workers", (1, 3))
def test_off_identical_across_workers_and_charge_modes(workers, charge_mode):
    query = multi_conjunct_query()
    baseline = run_query(query, adaptivity=None, charge_mode=charge_mode)
    off = run_query(query, adaptivity="off", workers=workers,
                    charge_mode=charge_mode)
    assert off[:3] == baseline[:3]


def test_off_session_attaches_no_manager():
    db = build_database()
    session = Session(db, SYSTEM_B, os_interference=None, engine="vectorized")
    assert session.adaptive is None
    assert session.context.adaptive is None
    assert session.execution.adaptivity == "off"
    assert not session.execution.is_adaptive
    session.close()


def test_execution_config_rejects_unknown_adaptivity():
    with pytest.raises(ValueError):
        ExecutionConfig(adaptivity="clairvoyant")
    with pytest.raises(ValueError):
        make_policy("off")  # "off" is a bypass, not a policy


def test_adaptivity_requires_vectorized_engine():
    """The tuple engine never consults the manager; reject the combination
    instead of silently measuring the non-adaptive path."""
    with pytest.raises(ValueError):
        ExecutionConfig(engine="tuple", adaptivity="greedy")
    db = build_database()
    with pytest.raises(ValueError):
        Session(db, SYSTEM_B, os_interference=None, engine="tuple",
                adaptivity="greedy")
    # Vectorized + off and vectorized + adaptive both construct fine.
    ExecutionConfig(engine="vectorized", adaptivity="greedy")
    ExecutionConfig(engine="tuple", adaptivity="off")


# ---------------------------------------------------------------------------
# Every policy returns identical rows (serial and parallel)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("layout", ("nsm", "pax"))
@pytest.mark.parametrize("mode", ("static", "greedy", "epsilon"))
def test_policies_return_identical_rows(mode, layout):
    query = multi_conjunct_query()
    baseline = run_query(query, adaptivity=None, layout=layout)
    adaptive = run_query(query, adaptivity=mode, layout=layout)
    assert adaptive[0] == baseline[0]
    # Adaptive charging differs by design: one predicate invocation per
    # conjunct per batch instead of one per batch.
    assert adaptive[2]["predicate"] > baseline[2]["predicate"]


@pytest.mark.parametrize("mode", ("static", "greedy"))
def test_parallel_adaptive_matches_serial_rows_and_is_deterministic(mode):
    query = multi_conjunct_query()
    serial = run_query(query, adaptivity=mode)
    first = run_query(query, adaptivity=mode, workers=3)
    second = run_query(query, adaptivity=mode, workers=3)
    assert first[0] == serial[0]
    # A fixed partitioning is deterministic (pool racing cannot move an
    # event): identical counts, invocations and merged statistics.
    assert second == first
    # The workers' data-side observations rode the tapes into the parent.
    merged = RuntimeStatsCollector.from_snapshot(first[3])
    assert merged.total_rows_in() > 0
    assert sum(s.branches for s in merged.conjuncts.values()) > 0


def test_adaptive_off_spec_roundtrip_pickles():
    """Morsel specs with adaptive state must survive the process boundary."""
    manager = AdaptiveExecution("greedy")
    manager.collector.observe_batch("k", 100, 7)
    manager.collector.observe_branches("k", 100, 7, 3)
    snapshot = pickle.loads(pickle.dumps(manager.snapshot()))
    clone = AdaptiveExecution.from_snapshot(snapshot)
    assert clone.mode == "greedy"
    assert clone.collector.selectivity("k") == pytest.approx(0.07)
    assert clone.collector.conjuncts["k"].mispredictions == 3


# ---------------------------------------------------------------------------
# Hypothesis: arbitrary conjunct sets, None-valued columns, every policy
# ---------------------------------------------------------------------------
class _NullCtx:
    """Charging sink for mask-identity checks (no simulated hardware)."""

    adaptive = None

    def visit_conjunct_batch(self, operation, outcomes, site=0, key=None):
        pass

    def observe_conjuncts(self, key, rows_in, rows_passed):
        pass


_COLUMNS = ("c0", "c1", "c2")

_values = st.one_of(st.integers(min_value=-50, max_value=50), st.none())


def _comparison(column, op, value):
    return Comparison(op, ColumnRef(column), Const(value))


_conjuncts = st.one_of(
    st.builds(_comparison, st.sampled_from(_COLUMNS),
              st.sampled_from(list(ComparisonOp)),
              st.integers(min_value=-50, max_value=50)),
    st.builds(lambda c, lo, width, il, ih: Between(
        ColumnRef(c), Const(lo), Const(lo + width), include_low=il,
        include_high=ih),
        st.sampled_from(_COLUMNS), st.integers(min_value=-50, max_value=50),
        st.integers(min_value=0, max_value=60), st.booleans(), st.booleans()),
    st.builds(lambda c, op, v: Not(_comparison(c, op, v)),
              st.sampled_from(_COLUMNS), st.sampled_from(list(ComparisonOp)),
              st.integers(min_value=-50, max_value=50)),
)


@settings(max_examples=60, deadline=None)
@given(conjuncts=st.lists(_conjuncts, min_size=2, max_size=4),
       rows=st.lists(st.tuples(_values, _values, _values),
                     min_size=0, max_size=40),
       mode=st.sampled_from(("static", "greedy", "epsilon")),
       warm_batches=st.integers(min_value=0, max_value=2))
def test_any_policy_mask_identical_to_static_evaluation(conjuncts, rows, mode,
                                                        warm_batches):
    predicate = And(tuple(conjuncts))
    columns = {name: [row[i] for row in rows]
               for i, name in enumerate(_COLUMNS)}
    count = len(rows)
    reference = predicate.evaluate_batch(columns, count)
    manager = AdaptiveExecution(mode)
    ctx = _NullCtx()
    # Warm the statistics first so learned orders are exercised too.
    for _ in range(warm_batches):
        manager.evaluate_batch(ctx, predicate, columns, count)
    mask = manager.evaluate_batch(ctx, predicate, columns, count)
    assert [bool(m) for m in mask] == [bool(r) for r in reference]


@settings(max_examples=40, deadline=None)
@given(parts=st.lists(st.lists(st.tuples(
    st.sampled_from(("p", "q", "r")),
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=0, max_value=500)), max_size=6),
    min_size=1, max_size=5),
    rnd=st.randoms())
def test_collector_merge_commutes(parts, rnd):
    collectors = []
    for part in parts:
        collector = RuntimeStatsCollector()
        for key, rows_in, passed in part:
            collector.observe_batch(key, rows_in, min(passed, rows_in))
            collector.observe_branches(key, rows_in, min(passed, rows_in),
                                       passed // 3)
        collectors.append(collector)
    shuffled = list(collectors)
    rnd.shuffle(shuffled)
    merged = RuntimeStatsCollector()
    for collector in shuffled:
        merged.merge(RuntimeStatsCollector.from_snapshot(collector.snapshot()))
    for key in {k for c in collectors for k in c.conjuncts}:
        for field in ("rows_in", "rows_passed", "batches", "branches",
                      "branches_taken", "mispredictions"):
            expected = sum(getattr(c.conjuncts[key], field)
                           for c in collectors if key in c.conjuncts)
            assert getattr(merged.conjuncts[key], field) == expected


# ---------------------------------------------------------------------------
# Policy behaviour
# ---------------------------------------------------------------------------
def test_flatten_conjuncts_handles_nested_ands():
    a = Comparison(ComparisonOp.LT, ColumnRef("x"), Const(1))
    b = Comparison(ComparisonOp.GT, ColumnRef("y"), Const(2))
    c = Not(Comparison(ComparisonOp.EQ, ColumnRef("z"), Const(3)))
    nested = And((And((a, b)), c))
    assert flatten_conjuncts(nested) == (a, b, c)
    assert flatten_conjuncts(a) == (a,)
    manager = AdaptiveExecution("static")
    assert manager.applies(nested)
    assert not manager.applies(a)
    assert not manager.applies(None)


def test_greedy_rank_orders_by_selectivity_per_cost():
    stats = RuntimeStatsCollector()
    stats.observe_batch("wide", 100, 90)     # selectivity 0.9
    stats.observe_batch("coin", 100, 50)     # selectivity 0.5
    stats.observe_batch("narrow", 100, 5)    # selectivity 0.05
    policy = GreedyRankPolicy()
    keys = ("wide", "coin", "narrow")
    assert policy.order(keys, (1, 1, 1), stats) == (2, 1, 0)
    # A higher evaluation cost demotes an otherwise-selective conjunct.
    assert policy.order(keys, (1, 1, 20), stats) == (1, 0, 2)
    # Unobserved conjuncts assume selectivity 0.5 (tie broken stably).
    fresh = RuntimeStatsCollector()
    assert policy.order(keys, (1, 1, 1), fresh) == (0, 1, 2)
    assert StaticPolicy().order(keys, (1, 1, 1), stats) == (0, 1, 2)


def test_epsilon_policy_is_deterministic_and_restorable():
    stats = RuntimeStatsCollector()
    stats.observe_batch("a", 100, 90)
    stats.observe_batch("b", 100, 10)
    keys, costs = ("a", "b"), (1, 1)

    first = EpsilonGreedyPolicy(epsilon=0.3)
    sequence = [first.order(keys, costs, stats) for _ in range(64)]
    second = EpsilonGreedyPolicy(epsilon=0.3)
    assert [second.order(keys, costs, stats) for _ in range(64)] == sequence
    # Exploration actually happens, and greedy order dominates.
    assert sequence.count((1, 0)) > len(sequence) // 2
    assert (0, 1) in sequence

    resumed = EpsilonGreedyPolicy(epsilon=0.3).restore(
        {"decisions": 32})
    assert [resumed.order(keys, costs, stats) for _ in range(32)] == sequence[32:]

    # advance() accounts decisions taken by morsel workers: the parent's
    # next snapshot continues the sequence instead of restarting it.
    advanced = EpsilonGreedyPolicy(epsilon=0.3)
    advanced.advance(32)
    assert advanced.state() == {"decisions": 32}
    assert [advanced.order(keys, costs, stats) for _ in range(32)] == sequence[32:]
    StaticPolicy().advance(5)  # stateless policies accept it as a no-op

    with pytest.raises(ValueError):
        EpsilonGreedyPolicy(epsilon=1.5)


def test_conjunct_key_is_stable_across_equal_expressions():
    a = Comparison(ComparisonOp.LT, ColumnRef("x"), Const(1))
    b = Comparison(ComparisonOp.LT, ColumnRef("x"), Const(1))
    assert a is not b and conjunct_key(a) == conjunct_key(b)


# ---------------------------------------------------------------------------
# None semantics of the expression layer (ordering safety)
# ---------------------------------------------------------------------------
def test_null_comparisons_are_never_satisfied():
    row = {"x": None, "y": 5}
    for op in ComparisonOp:
        assert Comparison(op, ColumnRef("x"), Const(3)).evaluate(row) is False
    assert Between(ColumnRef("x"), Const(0), Const(10)).evaluate(row) is False
    assert Between(ColumnRef("y"), Const(None), Const(10)).evaluate(row) is False
    # Batch paths agree with the row path.
    columns = {"x": [None, 1, 7], "y": [5, None, 2]}
    predicate = Between(ColumnRef("x"), Const(0), Const(10))
    assert predicate.evaluate_batch(columns, 3) == [False, True, True]
    comparison = Comparison(ComparisonOp.GT, ColumnRef("y"), Const(1))
    assert comparison.evaluate_batch(columns, 3) == [True, False, True]


# ---------------------------------------------------------------------------
# The payoff: greedy ordering beats static on the skewed workload
# ---------------------------------------------------------------------------
def test_greedy_reduces_mispredictions_and_cycles_on_skewed_workload():
    workload = MicroWorkload(MicroWorkloadConfig(scale=1.0 / 2000.0,
                                                 minimum_r_rows=600))
    query = workload.skewed_conjunct_selection()
    outcomes = {}
    for mode in ("off", "static", "greedy"):
        db = workload.build(include_s=False)
        session = Session(db, SYSTEM_B, os_interference=None,
                          engine="vectorized", adaptivity=mode)
        result = session.execute(query, warmup_runs=0)
        outcomes[mode] = result
        session.close()
    assert (outcomes["static"].rows == outcomes["greedy"].rows
            == outcomes["off"].rows)
    expected = workload.expected_skewed_rows()
    count = sum(1 for _ in workload.generate_r_rows())  # sanity anchor
    assert count == 600 and 0 < expected < count
    static, greedy = outcomes["static"], outcomes["greedy"]
    assert (greedy.counters.get("BR_MISS_PRED_RETIRED")
            < static.counters.get("BR_MISS_PRED_RETIRED"))
    assert (greedy.counters.get("CPU_CLK_UNHALTED")
            < static.counters.get("CPU_CLK_UNHALTED"))
    assert greedy.breakdown.components["TB"] < static.breakdown.components["TB"]
