"""The benchmark grid: warmed-build reuse, parallel cell dispatch and the
``run_bench`` regression gate.

The grid satellite's contract is that caching one warmed database build per
layout changes *nothing*: the address-space checkpoint/restore makes a
session against the cached build allocate at the same addresses as against
a fresh build, so rows and simulated cycles are identical -- and therefore
independent of how many cells ran before, which is what makes the cells
independently dispatchable to a process pool.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.storage.address_space import AddressSpace, AddressSpaceError
from repro.workloads.micro import MicroWorkloadConfig

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "scripts"))
import run_bench  # noqa: E402


TINY = MicroWorkloadConfig(scale=0.001)


def tiny_runner() -> ExperimentRunner:
    return ExperimentRunner(ExperimentConfig(micro=TINY, os_interference=False))


# ---------------------------------------------------------------------------
# Address-space checkpointing
# ---------------------------------------------------------------------------
class TestAddressSpaceCheckpoint:
    def test_restore_replays_identical_addresses(self):
        space = AddressSpace()
        space.allocate("heap", 1000)
        mark = space.checkpoint()
        first = space.allocate("workspace", 512, alignment=64)
        space.restore(mark)
        second = space.allocate("workspace", 512, alignment=64)
        assert first == second

    def test_restore_refuses_forward_jumps(self):
        space = AddressSpace()
        mark = space.checkpoint()
        mark["heap"] = 4096
        with pytest.raises(AddressSpaceError):
            space.restore(mark)

    def test_restore_is_per_region(self):
        space = AddressSpace()
        space.allocate("heap", 100)
        mark = space.checkpoint()
        space.allocate("heap", 100)
        space.allocate("index", 100)
        space.restore(mark)
        assert space.allocated_bytes("heap") == mark["heap"]
        assert space.allocated_bytes("index") == 0


# ---------------------------------------------------------------------------
# Warmed-build reuse
# ---------------------------------------------------------------------------
class TestGridDatabaseReuse:
    def test_grid_database_is_built_once_per_layout(self):
        runner = tiny_runner()
        db1, _ = runner.grid_database("nsm")
        db2, _ = runner.grid_database("nsm")
        db3, _ = runner.grid_database("pax")
        assert db1 is db2
        assert db3 is not db1

    def test_cached_cell_identical_to_fresh_build(self):
        """A cell measured against the shared warmed build must equal the
        same cell measured by a brand-new runner (fresh build)."""
        shared = tiny_runner()
        # Burn several sessions against the shared build first.
        shared.grid_cell("vectorized", "nsm", "SRS")
        shared.grid_cell("tuple", "nsm", "IRS")
        cached = shared.grid_cell("tuple", "nsm", "SJ")

        fresh = tiny_runner().grid_cell("tuple", "nsm", "SJ")
        assert cached.rows == fresh.rows
        assert cached.counters.as_dict() == fresh.counters.as_dict()

    def test_repeated_measurement_of_cached_cell_is_identical(self):
        runner = tiny_runner()
        first = runner.grid_cell("vectorized", "pax", "SRS")
        runner._grid_results.clear()
        second = runner.grid_cell("vectorized", "pax", "SRS")
        assert first.rows == second.rows
        assert first.counters.as_dict() == second.counters.as_dict()

    def test_serial_and_parallel_dispatch_agree(self):
        serial = tiny_runner().micro_grid(kinds=("SRS", "SJ"), layouts=("nsm",))
        parallel = tiny_runner().micro_grid(kinds=("SRS", "SJ"), layouts=("nsm",),
                                            grid_workers=3)
        assert serial.keys() == parallel.keys()
        for cell in serial:
            assert serial[cell].rows == parallel[cell].rows
            assert (serial[cell].counters.as_dict()
                    == parallel[cell].counters.as_dict())


# ---------------------------------------------------------------------------
# run_bench: cached measurement loop + regression gate
# ---------------------------------------------------------------------------
class TestRunBench:
    def measure(self, runner, repeat=2):
        points = []
        for engine in ("tuple", "vectorized"):
            point = run_bench.measure_cell(runner, engine, "nsm", "SRS",
                                           repeat=repeat)
            point["_counters"] = point["_counters"].as_dict()
            points.append(point)
        return points

    def test_measure_cell_asserts_repeat_identity(self):
        runner = run_bench.make_runner(0.001)
        points = self.measure(runner)
        assert all(p["cycles"] > 0 for p in points)
        assert points[0]["result_rows"] == points[1]["result_rows"]

    def test_merged_grid_counters_sum_cycles(self):
        runner = run_bench.make_runner(0.001)
        points = self.measure(runner)
        total = run_bench.merged_grid_counters(points)
        assert total.get("INST_RETIRED") == sum(
            p["_counters"]["INST_RETIRED"] for p in points)

    def gate(self, points, baseline_points, tolerance=0.2):
        return run_bench.compare_to_baseline(
            points, {"configs": baseline_points}, tolerance)

    def test_gate_passes_on_identical_reports(self):
        runner = run_bench.make_runner(0.001)
        points = self.measure(runner)
        lines, violations, speedups = self.gate(points, points)
        assert not violations
        assert len(lines) == len(points) + 1
        assert all(entry["speedup"] == 1.0 for entry in speedups.values())

    def test_gate_fails_on_cycle_change(self):
        runner = run_bench.make_runner(0.001)
        points = self.measure(runner)
        baseline = [dict(p) for p in points]
        baseline[0]["cycles"] += 1
        _, violations, _ = self.gate(points, baseline)
        assert any("cycles changed" in v for v in violations)

    def test_gate_fails_on_wall_regression_beyond_tolerance(self):
        runner = run_bench.make_runner(0.001)
        points = self.measure(runner)
        baseline = [dict(p) for p in points]
        baseline[0]["wall_seconds"] = points[0]["wall_seconds"] / 2.0
        _, violations, _ = self.gate(points, baseline, tolerance=0.2)
        assert any("wall clock regressed" in v for v in violations)
        # ...but a generous tolerance lets the same delta through.
        _, violations, _ = self.gate(points, baseline, tolerance=2.0)
        assert not any("wall clock regressed" in v for v in violations)

    def test_gate_ignores_cells_missing_from_baseline(self):
        runner = run_bench.make_runner(0.001)
        points = self.measure(runner)
        _, violations, speedups = self.gate(points, points[:1])
        assert not violations
        assert len(speedups) == 1
