"""Tests for the experiment runner and figure reproductions (small scale).

These tests verify the *plumbing* of the experiment harness -- caching, figure
structure, labels, text rendering -- on tiny datasets.  The quantitative
"shape" claims of the paper are asserted by the benchmarks, which run at the
calibrated benchmark scale.
"""

import pytest

from repro.experiments import (ExperimentConfig, ExperimentRunner, figure_5_1,
                               figure_5_2, figure_5_3, figure_5_4_left,
                               figure_5_4_right, figure_5_5, figure_5_6, figure_5_7,
                               headline_claims, record_size_sweep, table_4_1, table_4_2,
                               tpcc_summary)
from repro.workloads import MicroWorkloadConfig, TPCCConfig, TPCDConfig


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    config = ExperimentConfig(
        micro=MicroWorkloadConfig(scale=1 / 2000, minimum_r_rows=600),
        tpcd=TPCDConfig(lineitem_rows=400, orders_rows=40, part_rows=20, supplier_rows=10),
        tpcc=TPCCConfig(scale=1 / 300, users=4),
        tpcc_transactions=8,
        selectivity_points=(0.0, 0.10, 0.50),
        record_size_points=(20, 100),
        record_size_systems=("C",),
    )
    return ExperimentRunner(config)


class TestRunner:
    def test_results_are_cached(self, runner):
        first = runner.micro_result("B", "SRS")
        second = runner.micro_result("B", "SRS")
        assert first is second

    def test_system_a_irs_is_none(self, runner):
        assert runner.micro_result("A", "IRS") is None
        assert runner.micro_result("B", "IRS") is not None

    def test_unknown_kind_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.micro_result("B", "XYZ")

    def test_query_answers_match_ground_truth(self, runner):
        result = runner.micro_result("C", "SRS")
        expected = runner.micro_workload.expected_average(runner.config.selectivity)
        assert result.scalar == pytest.approx(expected)

    def test_selectivity_series_keys(self, runner):
        series = runner.selectivity_series("D", "SRS")
        assert set(series) == {0.0, 0.10, 0.50}

    def test_record_size_series_uses_separate_databases(self, runner):
        series = runner.record_size_series()
        assert set(series) == {("C", 20), ("C", 100)}
        sizes = {size: result.counters.get("RECORDS_PROCESSED")
                 for (_, size), result in series.items()}
        assert sizes[20] == sizes[100]          # same row count, different record size

    def test_tpcd_and_tpcc_results(self, runner):
        tpcd = runner.tpcd_result("B")
        assert tpcd.queries_in_unit == 17
        tpcc = runner.tpcc_result("B")
        assert tpcc.transactions == 8
        assert tpcc.metrics.cpi > 0


class TestFigures:
    def test_table_4_1_and_4_2(self):
        t41 = table_4_1()
        assert "512KB" in t41.text and "4-way" in t41.text
        t42 = table_4_2()
        assert "17 cycles" in t42.text and "TL2D" in t42.text

    def test_figure_5_1_structure(self, runner):
        figure = figure_5_1(runner)
        assert set(figure.data) == {"SRS", "IRS", "SJ"}
        assert set(figure.data["SRS"]) == {"A", "B", "C", "D"}
        assert set(figure.data["IRS"]) == {"B", "C", "D"}            # A excluded
        for shares in figure.data["SRS"].values():
            assert sum(shares.values()) == pytest.approx(1.0)
        assert "Figure 5.1" in figure.text

    def test_figure_5_2_structure(self, runner):
        figure = figure_5_2(runner)
        for kind in ("SRS", "IRS", "SJ"):
            for shares in figure.data[kind].values():
                assert sum(shares.values()) == pytest.approx(1.0)
        assert "L1 I-stalls" in figure.text

    def test_figure_5_3_divisors(self, runner):
        figure = figure_5_3(runner)
        srs_b = figure.data["B"]["SRS"]
        irs_b = figure.data["B"]["IRS"]
        # IRS is normalised by *selected* records, so it is much larger than
        # the per-R-record SRS value at 10% selectivity.
        assert irs_b > srs_b
        assert "A" in figure.data and "IRS" not in figure.data["A"]

    def test_figure_5_4(self, runner):
        left = figure_5_4_left(runner)
        assert 0.0 < left.data["C"]["SRS"] < 0.5
        right = figure_5_4_right(runner, system_key="D")
        assert set(right.data) == {"0%", "10%", "50%"}
        for shares in right.data.values():
            assert set(shares) == {"Branch mispred. stalls", "L1 I-cache stalls"}

    def test_figure_5_5(self, runner):
        figure = figure_5_5(runner)
        assert set(figure.data) == {"TDEP", "TFU"}
        assert figure.data["TDEP"]["B"]["SRS"] > 0

    def test_figure_5_6_and_5_7(self, runner):
        f6 = figure_5_6(runner, systems=("A", "B"))
        assert set(f6.data["SRS"]) == {"A", "B"}
        for cpi in f6.data["SRS"].values():
            assert cpi["total"] > 0
        f7 = figure_5_7(runner, systems=("A", "B"))
        for shares in f7.data["TPC-D"].values():
            assert sum(shares.values()) == pytest.approx(1.0)

    def test_tpcc_summary(self, runner):
        figure = tpcc_summary(runner, systems=("B",))
        assert figure.data["B"]["CPI"] > 0
        assert 0.0 < figure.data["B"]["memory stall share"] < 1.0

    def test_record_size_sweep(self, runner):
        figure = record_size_sweep(runner)
        assert set(figure.data) == {"C"}
        assert set(figure.data["C"]) == {"20B", "100B"}

    def test_headline_claims(self, runner):
        figure = headline_claims(runner)
        assert 0.0 < figure.data["average stall share of execution time"] < 1.0
        assert 0.0 < figure.data["average (TL1I+TL2D) share of memory stalls"] <= 1.0
