"""Tests for the emon-style measurement methodology."""

import pytest

from repro.emon import Emon, EmonError, EventSpec, Measurement, default_event_list
from repro.engine import Session
from repro.hardware import EventCounters
from repro.systems import SYSTEM_B


class TestEventSpec:
    def test_parse_with_and_without_mode(self):
        assert EventSpec.parse("INST_RETIRED:USER").mode == "USER"
        assert EventSpec.parse("INST_RETIRED:SUP").mode == "SUP"
        assert EventSpec.parse("inst_retired").event == "INST_RETIRED"
        assert str(EventSpec.parse("INST_RETIRED")) == "INST_RETIRED:USER"

    def test_parse_rejects_unknown_event_and_mode(self):
        with pytest.raises(EmonError):
            EventSpec.parse("NOT_AN_EVENT:USER")
        with pytest.raises(EmonError):
            EventSpec.parse("INST_RETIRED:RING3")
        with pytest.raises(EmonError):
            EventSpec.parse("INST_RETIRED:USER:EXTRA")

    def test_read_selects_the_right_bank(self):
        counters = EventCounters.from_dict({"INST_RETIRED": 10}, {"INST_RETIRED": 3})
        assert EventSpec.parse("INST_RETIRED:USER").read(counters) == 10
        assert EventSpec.parse("INST_RETIRED:SUP").read(counters) == 3


class FakeUnit:
    """Deterministic-with-noise unit runner for methodology tests."""

    def __init__(self, noise=0):
        self.calls = 0
        self.noise = noise

    def __call__(self) -> EventCounters:
        self.calls += 1
        wiggle = (self.calls % 3) * self.noise
        return EventCounters.from_dict({
            "INST_RETIRED": 1_000 + wiggle,
            "CPU_CLK_UNHALTED": 1_500 + wiggle,
            "BR_INST_RETIRED": 200,
        })


class TestEmon:
    def test_measure_pair_reads_both_events_from_same_runs(self):
        unit = FakeUnit()
        emon = Emon(unit, repetitions=3)
        results = emon.measure_pair("INST_RETIRED:USER", "CPU_CLK_UNHALTED:USER")
        assert unit.calls == 3
        assert results["INST_RETIRED:USER"].mean == pytest.approx(1_000)
        assert results["CPU_CLK_UNHALTED:USER"].mean == pytest.approx(1_500)
        assert len(results["INST_RETIRED:USER"].samples) == 3

    def test_more_than_two_counters_rejected(self):
        emon = Emon(FakeUnit())
        # collect() is the sanctioned way to walk longer lists; measure_pair
        # itself never accepts more than the two hardware counters.
        with pytest.raises(TypeError):
            emon.measure_pair("INST_RETIRED", "CPU_CLK_UNHALTED", "BR_INST_RETIRED")

    def test_collect_walks_events_pairwise(self):
        unit = FakeUnit()
        emon = Emon(unit, repetitions=2)
        results = emon.collect(["INST_RETIRED:USER", "CPU_CLK_UNHALTED:USER",
                                "BR_INST_RETIRED:USER"])
        assert set(results) == {"INST_RETIRED:USER", "CPU_CLK_UNHALTED:USER",
                                "BR_INST_RETIRED:USER"}
        # Two pairs (2+1 events) at two repetitions each -> four unit runs.
        assert unit.calls == 4

    def test_zero_mean_scatter_fails_confidence(self):
        """A counter oscillating around zero must not pass silently.

        ``std_dev / mean`` with a zero mean used to short-circuit to 0.0,
        so a wildly unstable zero-centred measurement looked perfectly
        confident.  It now reports infinite relative deviation.
        """
        spec = EventSpec.parse("INST_RETIRED:USER")
        scattered = Measurement(spec, samples=[-500.0, 500.0])
        assert scattered.mean == 0.0
        assert scattered.std_dev > 0.0
        assert scattered.relative_std_dev == float("inf")
        emon = Emon(FakeUnit(), max_relative_std_dev=0.05)
        assert emon.check_confidence({"INST_RETIRED:USER": scattered}) == \
            ["INST_RETIRED:USER"]

    def test_all_zero_samples_are_confident(self):
        spec = EventSpec.parse("INST_RETIRED:USER")
        silent = Measurement(spec, samples=[0.0, 0.0, 0.0])
        assert silent.relative_std_dev == 0.0
        emon = Emon(FakeUnit(), max_relative_std_dev=0.05)
        assert emon.check_confidence({"INST_RETIRED:USER": silent}) == []

    def test_negative_mean_normalises_by_magnitude(self):
        spec = EventSpec.parse("INST_RETIRED:USER")
        negative = Measurement(spec, samples=[-99.0, -101.0])
        assert negative.relative_std_dev > 0.0
        assert negative.relative_std_dev == pytest.approx(
            negative.std_dev / 100.0)

    def test_confidence_check_flags_noisy_events(self):
        emon = Emon(FakeUnit(noise=400), repetitions=3, max_relative_std_dev=0.05)
        results = emon.measure_pair("INST_RETIRED:USER", "BR_INST_RETIRED:USER")
        noisy = emon.check_confidence(results)
        assert "INST_RETIRED:USER" in noisy
        assert "BR_INST_RETIRED:USER" not in noisy

    def test_zero_repetitions_rejected(self):
        with pytest.raises(EmonError):
            Emon(FakeUnit(), repetitions=0)

    def test_default_event_list_is_parseable(self):
        events = default_event_list()
        assert len(events) >= 20
        for event in events:
            EventSpec.parse(event)

    def test_means_helper(self):
        emon = Emon(FakeUnit(), repetitions=2)
        results = emon.measure_pair("INST_RETIRED:USER")
        assert Emon.means(results)["INST_RETIRED:USER"] == pytest.approx(1_000)


class TestEmonAgainstSimulator:
    def test_multiplexed_measurement_matches_direct_counters(self, micro_workload,
                                                              micro_database):
        """The paper's pairwise methodology must agree with full observation."""
        query = micro_workload.sequential_range_selection(0.10)

        def unit() -> EventCounters:
            session = Session(micro_database, SYSTEM_B, os_interference=None)
            return session.execute(query, warmup_runs=0).counters

        direct = unit()
        emon = Emon(unit, repetitions=2)
        results = emon.collect(["INST_RETIRED:USER", "BR_INST_RETIRED:USER",
                                "DATA_MEM_REFS:USER"])
        # The workload is deterministic, so the multiplexed means match the
        # directly observed counts exactly and the std-dev is zero.
        assert results["INST_RETIRED:USER"].mean == direct.get("INST_RETIRED")
        assert results["BR_INST_RETIRED:USER"].mean == direct.get("BR_INST_RETIRED")
        assert results["DATA_MEM_REFS:USER"].mean == direct.get("DATA_MEM_REFS")
        assert emon.check_confidence(results) == []
