"""Tests for the execution-time breakdown framework, metrics and report rendering."""

import pytest

from repro.analysis import (COMPONENTS, ExecutionBreakdown, GROUPS, MEMORY_COMPONENTS,
                            TABLE_4_2, compute_metrics, cpi_breakdown)
from repro.analysis.breakdown import BreakdownError
from repro.analysis.report import (format_comparison, format_key_values,
                                   format_percentage, format_stacked_bars, format_table)
from repro.hardware import EventCounters, PENTIUM_II_XEON


def sample_counters(**overrides) -> EventCounters:
    base = {
        "CPU_CLK_UNHALTED": 10_000,
        "INST_RETIRED": 6_000,
        "UOPS_RETIRED": 8_100,
        "DATA_MEM_REFS": 3_000,
        "DCU_LINES_IN": 60,
        "IFU_IFETCH": 900,
        "IFU_IFETCH_MISS": 90,
        "IFU_MEM_STALL": 900,
        "ILD_STALL": 150,
        "L2_DATA_RQSTS": 60,
        "L2_DATA_MISS": 30,
        "L2_IFETCH": 90,
        "L2_IFETCH_MISS": 2,
        "ITLB_MISS": 3,
        "DTLB_MISS": 10,
        "BR_INST_RETIRED": 1_200,
        "BR_MISS_PRED_RETIRED": 60,
        "BTB_MISSES": 600,
        "PARTIAL_RAT_STALLS": 700,
        "FU_CONTENTION_STALLS": 300,
        "RESOURCE_STALLS": 1_150,
        "BUS_TRAN_MEM": 40,
        "RECORDS_PROCESSED": 100,
    }
    base.update(overrides)
    return EventCounters.from_dict(base)


class TestExecutionBreakdown:
    def test_table_4_2_formulae(self):
        breakdown = ExecutionBreakdown.from_counters(sample_counters(), PENTIUM_II_XEON)
        c = breakdown.components
        assert c["TC"] == pytest.approx(8_100 / 3)
        assert c["TL1D"] == pytest.approx((60 - 30) * 4)
        assert c["TL1I"] == 900
        assert c["TL2D"] == pytest.approx(30 * 65)
        assert c["TL2I"] == pytest.approx(2 * 65)
        assert c["TITLB"] == pytest.approx(3 * 32)
        assert c["TB"] == pytest.approx(60 * 17)
        assert c["TDEP"] == 700
        assert c["TFU"] == 300
        assert c["TILD"] == 150
        assert c["TDTLB"] == 0.0          # not measured, as in the paper

    def test_dtlb_optionally_included(self):
        breakdown = ExecutionBreakdown.from_counters(sample_counters(), include_dtlb=True)
        assert breakdown.components["TDTLB"] == pytest.approx(10 * 32)

    def test_group_shares_sum_to_one(self):
        breakdown = ExecutionBreakdown.from_counters(sample_counters())
        shares = breakdown.shares()
        assert set(shares) == set(GROUPS)
        assert sum(shares.values()) == pytest.approx(1.0)
        memory_shares = breakdown.memory_shares()
        assert set(memory_shares) == set(MEMORY_COMPONENTS)
        assert sum(memory_shares.values()) == pytest.approx(1.0)

    def test_component_taxonomy_is_complete(self):
        assert set(COMPONENTS) == {"TC", "TL1D", "TL1I", "TL2D", "TL2I", "TDTLB",
                                   "TITLB", "TB", "TFU", "TDEP", "TILD"}
        assert {m.component for m in TABLE_4_2} == set(COMPONENTS) | {"TOVL"}

    def test_aggregate_properties(self):
        # Use a cycle total below the component sum (as in real measurements,
        # where the per-component estimates are upper bounds).
        breakdown = ExecutionBreakdown.from_counters(sample_counters(CPU_CLK_UNHALTED=7_000))
        assert breakdown.memory == pytest.approx(
            breakdown.components["TL1D"] + breakdown.components["TL1I"]
            + breakdown.components["TL2D"] + breakdown.components["TL2I"]
            + breakdown.components["TITLB"])
        assert breakdown.resource == pytest.approx(700 + 300 + 150)
        assert breakdown.stall == pytest.approx(breakdown.memory + breakdown.branch
                                                + breakdown.resource)
        assert breakdown.estimated_total >= breakdown.total_cycles
        assert breakdown.overlap == pytest.approx(breakdown.estimated_total
                                                  - breakdown.total_cycles)

    def test_per_record(self):
        breakdown = ExecutionBreakdown.from_counters(sample_counters())
        per_record = breakdown.per_record()
        assert per_record["total"] == pytest.approx(100.0)
        assert per_record["TC"] == pytest.approx(27.0)
        with pytest.raises(BreakdownError):
            breakdown.per_record(0)

    def test_merge_and_average(self):
        one = ExecutionBreakdown.from_counters(sample_counters())
        two = ExecutionBreakdown.from_counters(sample_counters(CPU_CLK_UNHALTED=20_000))
        merged = one.merged_with(two)
        assert merged.total_cycles == pytest.approx(30_000)
        assert merged.components["TB"] == pytest.approx(2 * 60 * 17)
        averaged = ExecutionBreakdown.average([one, two], label="avg")
        assert averaged.total_cycles == pytest.approx(30_000)
        with pytest.raises(BreakdownError):
            ExecutionBreakdown.average([])

    def test_missing_cycles_rejected(self):
        with pytest.raises(BreakdownError):
            ExecutionBreakdown.from_counters(EventCounters())

    def test_average_of_empty_iterable_message(self):
        with pytest.raises(BreakdownError, match="zero breakdowns"):
            ExecutionBreakdown.average(iter(()))

    def test_average_of_one_is_identity(self):
        one = ExecutionBreakdown.from_counters(sample_counters())
        averaged = ExecutionBreakdown.average([one])
        assert averaged.total_cycles == pytest.approx(one.total_cycles)
        for name, value in one.components.items():
            assert averaged.components[name] == pytest.approx(value)

    def test_merged_with_keeps_component_taxonomy(self):
        one = ExecutionBreakdown.from_counters(sample_counters())
        two = ExecutionBreakdown.from_counters(
            sample_counters(CPU_CLK_UNHALTED=20_000))
        merged = one.merged_with(two)
        assert set(merged.components) == set(one.components)
        for name in one.components:
            assert merged.components[name] == pytest.approx(
                one.components[name] + two.components[name])
        # Merging is order-independent on the numbers.
        flipped = two.merged_with(one)
        assert flipped.total_cycles == pytest.approx(merged.total_cycles)

    def test_per_record_zero_records_message(self):
        counters = sample_counters(RECORDS_PROCESSED=0)
        breakdown = ExecutionBreakdown.from_counters(counters)
        with pytest.raises(BreakdownError, match="no records"):
            breakdown.per_record()


class TestMetrics:
    def test_rate_metrics(self):
        metrics = compute_metrics(sample_counters())
        assert metrics.cpi == pytest.approx(10_000 / 6_000)
        assert metrics.instructions_per_record == pytest.approx(60.0)
        assert metrics.l1d_miss_rate == pytest.approx(60 / 3_000)
        assert metrics.l2_data_miss_rate == pytest.approx(0.5)
        assert metrics.branch_fraction == pytest.approx(0.2)
        assert metrics.branch_misprediction_rate == pytest.approx(0.05)
        assert metrics.btb_miss_rate == pytest.approx(0.5)
        assert 0.0 <= metrics.memory_bandwidth_utilisation <= 1.0

    def test_zero_denominators_do_not_crash(self):
        metrics = compute_metrics(EventCounters.from_dict({"CPU_CLK_UNHALTED": 10}))
        assert metrics.cpi == 0.0
        assert metrics.l1d_miss_rate == 0.0

    def test_cpi_breakdown_sums_to_measured_cpi(self):
        breakdown = ExecutionBreakdown.from_counters(sample_counters())
        cpi = cpi_breakdown(breakdown, instructions=6_000)
        partial = cpi["computation"] + cpi["memory"] + cpi["branch"] + cpi["resource"]
        assert partial == pytest.approx(cpi["total"])
        assert cpi["total"] == pytest.approx(10_000 / 6_000)
        with pytest.raises(ValueError):
            cpi_breakdown(breakdown, instructions=0)

    def test_metrics_as_dict_round_trip(self):
        metrics = compute_metrics(sample_counters())
        exported = metrics.as_dict()
        assert exported["cpi"] == metrics.cpi
        assert "l2_data_misses_per_record" in exported


class TestReportRendering:
    def test_format_table_includes_all_cells_and_dashes(self):
        text = format_table("Demo", ["r1", "r2"], ["A", "B"],
                            {"A": {"r1": 0.5, "r2": 0.25}, "B": {"r1": 1.0}})
        assert "Demo" in text and "50.0%" in text and "100.0%" in text
        assert "-" in text          # B/r2 missing

    def test_format_stacked_bars_normalises(self):
        text = format_stacked_bars("Bars", {"A": {"x": 3.0, "y": 1.0}}, ("x", "y"), width=40)
        assert "legend" in text and "|" in text

    def test_format_key_values_and_comparison(self):
        assert "cpi" in format_key_values("T", {"cpi": 1.234})
        comparison = format_comparison("T", [("stalls", ">=50%", "61%", "ok")])
        assert "stalls" in comparison and "verdict" in comparison

    def test_format_percentage(self):
        assert format_percentage(0.5).strip() == "50.0%"

    def test_format_table_custom_formatter_and_row_header(self):
        text = format_table("Cycles", ["scan"], ["B"],
                            {"B": {"scan": 1234.0}},
                            formatter=lambda v: f"{v:,.0f}",
                            row_header="operator")
        assert "1,234" in text
        # Header width accounts for the row-header label.
        assert text.splitlines()[3].startswith("scan")

    def test_format_table_none_cell_renders_dash(self):
        text = format_table("T", ["r"], ["A"], {"A": {"r": None}})
        assert text.splitlines()[-1].strip().endswith("-")

    def test_format_stacked_bars_empty_series_renders_empty_marker(self):
        text = format_stacked_bars("Bars", {"A": {"x": 0.0, "y": 0.0}},
                                   ("x", "y"))
        assert "(empty)" in text

    def test_format_stacked_bars_width_is_clipped(self):
        text = format_stacked_bars("Bars", {"A": {"x": 1.0, "y": 1.0}},
                                   ("x", "y"), width=10)
        bar_line = text.splitlines()[-1]
        inner = bar_line.split("|")[1]
        assert len(inner) == 10

    def test_format_key_values_empty_mapping_raises(self):
        with pytest.raises(ValueError):
            format_key_values("T", {})

    def test_format_key_values_mixed_types(self):
        text = format_key_values("T", {"cycles": 1234567, "cpi": 1.5,
                                       "layout": "pax"})
        assert "1234567" in text and "1.500" in text and "pax" in text

    def test_format_comparison_aligns_wide_cells(self):
        rows = [("a-very-long-observation-name", "1", "2", "mismatch")]
        text = format_comparison("T", rows)
        header, divider = text.splitlines()[2], text.splitlines()[3]
        assert len(header) == len(divider)
        assert "a-very-long-observation-name" in text
