"""Tests for the hardware event-counter register file."""

import pytest

from repro.hardware.counters import (EVENT_DESCRIPTIONS, EVENT_NAMES, EventCounters,
                                     MODE_SUP, MODE_USER, UnknownEventError)


class TestEventVocabulary:
    def test_every_event_has_a_description(self):
        assert set(EVENT_NAMES) == set(EVENT_DESCRIPTIONS)
        assert all(EVENT_DESCRIPTIONS[name] for name in EVENT_NAMES)

    def test_core_paper_events_present(self):
        for event in ("CPU_CLK_UNHALTED", "INST_RETIRED", "UOPS_RETIRED",
                      "IFU_MEM_STALL", "L2_DATA_MISS", "BR_MISS_PRED_RETIRED",
                      "ITLB_MISS", "PARTIAL_RAT_STALLS", "ILD_STALL"):
            assert event in EVENT_DESCRIPTIONS


class TestEventCounters:
    def test_add_and_get(self):
        counters = EventCounters()
        counters.add("INST_RETIRED", 100)
        counters.add("INST_RETIRED", 50)
        assert counters.get("INST_RETIRED") == 150
        assert counters["INST_RETIRED"] == 150

    def test_modes_are_independent(self):
        counters = EventCounters()
        counters.add("INST_RETIRED", 10, MODE_USER)
        counters.add("INST_RETIRED", 3, MODE_SUP)
        assert counters.get("INST_RETIRED", MODE_USER) == 10
        assert counters.get("INST_RETIRED", MODE_SUP) == 3
        assert counters.total("INST_RETIRED") == 13

    def test_unknown_event_rejected(self):
        counters = EventCounters()
        with pytest.raises(UnknownEventError):
            counters.add("NOT_AN_EVENT", 1)
        with pytest.raises(UnknownEventError):
            counters.get("NOT_AN_EVENT")

    def test_unknown_mode_rejected(self):
        counters = EventCounters()
        with pytest.raises(ValueError):
            counters.add("INST_RETIRED", 1, "KERNELish")

    def test_snapshot_is_independent(self):
        counters = EventCounters()
        counters.add("INST_RETIRED", 5)
        snap = counters.snapshot()
        counters.add("INST_RETIRED", 5)
        assert snap.get("INST_RETIRED") == 5
        assert counters.get("INST_RETIRED") == 10

    def test_diff(self):
        counters = EventCounters()
        counters.add("INST_RETIRED", 5)
        earlier = counters.snapshot()
        counters.add("INST_RETIRED", 7)
        counters.add("DATA_MEM_REFS", 2)
        delta = counters.diff(earlier)
        assert delta.get("INST_RETIRED") == 7
        assert delta.get("DATA_MEM_REFS") == 2
        assert delta.get("UOPS_RETIRED") == 0

    def test_merge(self):
        a = EventCounters.from_dict({"INST_RETIRED": 5})
        b = EventCounters.from_dict({"INST_RETIRED": 3, "DATA_MEM_REFS": 1})
        merged = a.merged_with(b)
        assert merged.get("INST_RETIRED") == 8
        assert merged.get("DATA_MEM_REFS") == 1
        # inputs untouched
        assert a.get("INST_RETIRED") == 5

    def test_scaled(self):
        counters = EventCounters.from_dict({"INST_RETIRED": 10})
        assert counters.scaled(0.5).get("INST_RETIRED") == 5

    def test_as_dict_has_every_event(self):
        counters = EventCounters()
        counters.add("INST_RETIRED", 1)
        exported = counters.as_dict()
        assert set(exported) == set(EVENT_NAMES)
        assert exported["INST_RETIRED"] == 1
        assert exported["UOPS_RETIRED"] == 0

    def test_from_dict_validates_events(self):
        with pytest.raises(UnknownEventError):
            EventCounters.from_dict({"BOGUS": 1})

    def test_events_with_counts_iterates_in_stable_order(self):
        counters = EventCounters()
        counters.add("INST_RETIRED", 2, MODE_USER)
        counters.add("INST_RETIRED", 1, MODE_SUP)
        rows = list(counters.events_with_counts())
        assert [row[0] for row in rows] == list(EVENT_NAMES)
        row = dict((name, (u, s)) for name, u, s in rows)
        assert row["INST_RETIRED"] == (2, 1)

    def test_reset(self):
        counters = EventCounters.from_dict({"INST_RETIRED": 5}, {"INST_RETIRED": 2})
        counters.reset()
        assert counters.total("INST_RETIRED") == 0
