"""Property: interleaved checkpoint/restore equals N fresh serial builds.

The serving layer multiplexes many logical sessions over **one** warmed
database build by rolling the shared address space back to the post-build
checkpoint before every query.  The property that makes this sound is that
*any* interleaving of sessions — any order, any mix of query classes, any
admission concurrency — produces, for every query, exactly the rows and
simulated counts of a solo session against its own freshly built database.

Hypothesis drives the interleavings: it draws an arbitrary sequence of
query classes and a concurrency, serves the sequence through a server with
the caching layers off (so every query executes), and compares each result
against a per-class reference measured once against a fresh build.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.workloads import MicroWorkloadConfig

TINY = MicroWorkloadConfig(scale=0.001)

CLASS_KEYS = ("SRS", "SRS-50", "IRS", "SJ", "ACS")


def _query_for(workload, class_key):
    if class_key == "SRS":
        return workload.sequential_range_selection()
    if class_key == "SRS-50":
        return workload.sequential_range_selection(0.5)
    if class_key == "IRS":
        return workload.indexed_range_selection()
    if class_key == "SJ":
        return workload.sequential_join()
    return workload.skewed_conjunct_selection()


def _fresh_runner() -> ExperimentRunner:
    return ExperimentRunner(ExperimentConfig(micro=TINY,
                                             os_interference=False))


#: Per-class reference measured against its own fresh build, computed once:
#: the builds and sessions are deterministic, so one fresh-build measurement
#: per class IS the "N fresh serial builds" oracle for every interleaving.
_REFERENCE: dict = {}


def _reference(class_key):
    cached = _REFERENCE.get(class_key)
    if cached is None:
        runner = _fresh_runner()  # brand-new build for this class alone
        session = runner.grid_session("vectorized", "nsm")
        result = session.execute(_query_for(runner.micro_workload, class_key),
                                 warmup_runs=0)
        cached = (result.rows, result.counters.as_dict())
        _REFERENCE[class_key] = cached
    return cached


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sequence=st.lists(st.sampled_from(CLASS_KEYS), min_size=1,
                         max_size=8),
       concurrency=st.integers(min_value=1, max_value=4))
def test_interleaved_restores_match_fresh_serial_builds(sequence,
                                                        concurrency):
    runner = _fresh_runner()
    server = runner.serving_server("nsm", max_concurrency=concurrency,
                                   plan_cache=False, result_cache=False,
                                   shared_scans=False)
    futures = [server.submit(_query_for(runner.micro_workload, key))
               for key in sequence]
    server.run_until_idle()
    for class_key, future in zip(sequence, futures):
        rows, counters = _reference(class_key)
        assert future.outcome.rows == rows
        assert future.outcome.result.counters.as_dict() == counters


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sequence=st.lists(st.sampled_from(CLASS_KEYS), min_size=1,
                         max_size=8))
def test_interleaved_serving_with_all_layers_preserves_rows(sequence):
    """With caches and shared scans ON rows still match fresh builds (counts
    legitimately differ on result-cache hits)."""
    runner = _fresh_runner()
    server = runner.serving_server("nsm", max_concurrency=4)
    futures = [server.submit(_query_for(runner.micro_workload, key))
               for key in sequence]
    server.run_until_idle()
    for class_key, future in zip(sequence, futures):
        rows, counters = _reference(class_key)
        assert future.outcome.rows == rows
        if not future.outcome.result_cached:
            assert future.outcome.result.counters.as_dict() == counters
