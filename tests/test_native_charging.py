"""Differential tests: native charging fast paths vs. the pure-Python oracle.

Beyond the cache automaton (tests/test_native_cache.py), the compiled
``_cachesim`` extension carries whole *charging* operations: the processor's
charged data/instruction accesses (``charged_strided``/``fetch_run``), the
executor's full routine visit (``visit``: hot/cold fetch, fused counters,
workspace churn, branch sites, bulk branches), workspace touches and the
adaptive conjunct branch loop (``conjunct``).  The contract is total: every
event counter, every cache/TLB/branch statistic, every piece of
microarchitectural state (cache MRU order, TLB LRU order, BTB entry tags /
histories / pattern tables) and every piece of executor bookkeeping (visit
counter, cold/workspace cursors, bulk-misprediction carry, per-site state)
must be byte-identical to the pure-Python code for any operation
interleaving.

The oracle side is obtained by clearing ``SimulatedProcessor._native_state``
(and constructing the context afterwards, so ``ExecutionContext._native_ctx``
stays ``None``) -- the same state ``REPRO_NATIVE=0`` produces at import time.
"""

import pytest

from hypothesis import given, settings, strategies as st

import repro.hardware.cache as cache_mod
from repro.execution.context import ExecutionContext
from repro.hardware.processor import SimulatedProcessor
from repro.storage.address_space import AddressSpace
from repro.systems import SYSTEM_A, SYSTEM_B

pytestmark = pytest.mark.skipif(
    cache_mod._NATIVE is None,
    reason="native _cachesim extension unavailable; pure-Python path is the only path")


# --------------------------------------------------------------------- state


def processor_state(proc: SimulatedProcessor):
    """Everything a charging call can change, microarchitectural state included."""
    caches = proc.caches
    return {
        "user": dict(proc.counters.user),
        "sup": dict(proc.counters.sup),
        "l1d": ([list(lines) for lines in caches.l1d._sets],
                [set(d) for d in caches.l1d._dirty],
                caches.l1d.stats.as_dict()),
        "l1i": ([list(lines) for lines in caches.l1i._sets],
                caches.l1i.stats.as_dict()),
        "l2": ([list(lines) for lines in caches.l2._sets],
               [set(d) for d in caches.l2._dirty],
               caches.l2.stats.as_dict()),
        "dtlb": (list(proc.dtlb._entries), proc.dtlb.stats.as_dict()),
        "itlb": (list(proc.itlb._entries), proc.itlb.stats.as_dict()),
        "btb": [[(e.tag, e.history, tuple(e.counters)) for e in ways]
                for ways in proc.branch_unit._sets],
        "branch_stats": proc.branch_unit.stats.as_dict(),
        "stall": proc._l1i_stall_cycles,
        "last_page": proc._last_instruction_page,
    }


def context_state(ctx: ExecutionContext):
    state = processor_state(ctx.processor)
    state.update({
        "visit_counter": ctx._visit_counter,
        "cold_cursor": ctx._cold_cursor,
        "workspace_cursor": ctx._workspace_cursor,
        "bulk_carry": ctx._bulk_mispred_carry,
        "site_state": dict(ctx._site_state),
        "invocations": dict(ctx.op_invocations),
    })
    return state


def assert_states_identical(native, oracle):
    for key in native:
        assert native[key] == oracle[key], f"{key} diverged"


def processor_pair():
    native = SimulatedProcessor()
    oracle = SimulatedProcessor()
    oracle._native_state = None
    assert native._native_state is not None
    return native, oracle


def context_pair(profile=SYSTEM_B, charge_mode="span"):
    def build(force_python):
        proc = SimulatedProcessor()
        if force_python:
            proc._native_state = None
        return ExecutionContext(proc, profile, AddressSpace(),
                                charge_mode=charge_mode)
    native, oracle = build(False), build(True)
    assert native._native_ctx is not None
    assert oracle._native_ctx is None
    return native, oracle


# --------------------------------------------------- processor-level charges


def replay_processor(proc: SimulatedProcessor, trace):
    results = []
    for step in trace:
        op, args = step[0], step[1:]
        results.append(getattr(proc, op)(*args))
    return results


_addr = st.integers(min_value=0, max_value=1 << 16)
_proc_step = st.one_of(
    st.tuples(st.just("data_read"), _addr, st.integers(1, 64)),
    st.tuples(st.just("data_write"), _addr, st.integers(1, 64)),
    st.tuples(st.just("data_read_strided"), _addr, st.integers(-8, 96),
              st.integers(1, 48), st.integers(1, 16)),
    st.tuples(st.just("data_write_strided"), _addr, st.integers(-8, 96),
              st.integers(1, 48), st.integers(1, 16)),
    st.tuples(st.just("data_read_span"), _addr, st.integers(1, 512),
              st.integers(1, 64)),
    st.tuples(st.just("fetch_code_run"), _addr, st.integers(0, 40)),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_proc_step, min_size=1, max_size=60))
def test_processor_charges_identical(trace):
    native, oracle = processor_pair()
    assert replay_processor(native, trace) == replay_processor(oracle, trace)
    assert_states_identical(processor_state(native), processor_state(oracle))


def test_degenerate_strides_match_scalar_loop():
    native, oracle = processor_pair()
    for proc in (native, oracle):
        proc.data_read_strided(0x4000, 0, 7, 4)      # stride 0: same element
        proc.data_read_strided(0x5000, -16, 5, 4)    # negative stride
        proc.data_write_strided(0x6000, 0, 3, 8)
        proc.data_read_strided(0x7000, 32, 1, 4)     # count == 1
    assert_states_identical(processor_state(native), processor_state(oracle))


def test_finalized_cycles_identical_after_mixed_traffic():
    native, oracle = processor_pair()
    for proc in (native, oracle):
        proc.fetch_code_run(0x1000, 24)
        proc.data_read_strided(0x80000, 8, 4096, 4)
        proc.data_write_strided(0x90000, 32, 512, 4)
        for i in range(128):
            proc.data_read(0xa0000 + i * 60, 4)
        proc.retire(5000)
    assert (native.finalize().as_dict() == oracle.finalize().as_dict())


# ------------------------------------------------------ context-level visits


def segment_names(ctx, limit=8):
    return list(ctx.layout.segments())[:limit]


def replay_context(ctx: ExecutionContext, trace):
    names = segment_names(ctx)
    for step in trace:
        op = step[0]
        if op == "visit":
            _, which, taken = step
            ctx.visit(names[which % len(names)], data_taken=taken)
        elif op == "batch":
            _, which, count = step
            ctx.visit_batch(names[which % len(names)], count)
        else:  # conjunct
            _, which, site, outcomes = step
            ctx.visit_conjunct_batch(names[which % len(names)],
                                     outcomes, site=site)


_ctx_step = st.one_of(
    st.tuples(st.just("visit"), st.integers(0, 7),
              st.sampled_from([None, False, True])),
    st.tuples(st.just("batch"), st.integers(0, 7), st.integers(1, 40)),
    st.tuples(st.just("conjunct"), st.integers(0, 7), st.integers(0, 5),
              st.lists(st.booleans(), min_size=1, max_size=32)),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(_ctx_step, min_size=1, max_size=40))
def test_context_visits_identical(trace):
    native, oracle = context_pair()
    replay_context(native, trace)
    replay_context(oracle, trace)
    assert_states_identical(context_state(native), context_state(oracle))


@pytest.mark.parametrize("profile", [SYSTEM_A, SYSTEM_B],
                         ids=["system_a", "system_b"])
def test_long_visit_sequence_identical(profile):
    """Long enough to wrap the cold pool and the workspace, exercise every
    branch-site kind repeatedly and accumulate a non-trivial bulk carry."""
    native, oracle = context_pair(profile)
    for ctx in (native, oracle):
        names = segment_names(ctx)
        for i in range(600):
            ctx.visit(names[i % len(names)],
                      data_taken=(None, True, False)[i % 3])
        ctx.visit_batch(names[0], 200)
        ctx.visit_conjunct_batch(names[1], [i % 3 != 0 for i in range(300)],
                                 site=2)
    assert_states_identical(context_state(native), context_state(oracle))


def test_per_address_mode_stays_pure_python_and_equivalent():
    """``per_address`` charging never takes the native visit path, so the
    span-vs-per_address differential doubles as a native-vs-Python one."""
    span, _ = context_pair(SYSTEM_B, charge_mode="span")
    per_address = ExecutionContext(SimulatedProcessor(), SYSTEM_B,
                                   AddressSpace(), charge_mode="per_address")
    assert per_address._native_ctx is None
    for ctx in (span, per_address):
        names = segment_names(ctx)
        for i in range(150):
            ctx.visit(names[i % len(names)], data_taken=bool(i % 2))
    native_state = context_state(span)
    oracle_state = context_state(per_address)
    for key in ("user", "dtlb", "itlb", "branch_stats", "btb",
                "visit_counter", "workspace_cursor", "bulk_carry"):
        assert native_state[key] == oracle_state[key], f"{key} diverged"


def test_os_interference_disables_native_visit():
    """With an OS model the visit must stay on Python (``charge_routine``
    drives the interrupt hook); processor-level fast paths remain safe."""
    from repro.hardware.os_interference import OSInterferenceConfig
    proc = SimulatedProcessor(os_interference=OSInterferenceConfig())
    ctx = ExecutionContext(proc, SYSTEM_B, AddressSpace())
    assert ctx._native_ctx is None
    assert proc._native_state is not None
    names = segment_names(ctx)
    for i in range(50):
        ctx.visit(names[i % len(names)])  # smoke: interrupts still fire
    assert proc.counters.sup.get("OS_INTERRUPTS", 0) >= 0
