"""Differential harness for the data-plane kernel backends.

The kernels package (:mod:`repro.execution.kernels`) promises that backend
choice is invisible: same rows, same row order, same column order, and
byte-identical simulated counts.  This suite enforces the promise at two
levels:

* **Kernel-level** (Hypothesis): every kernel contract -- predicate masks,
  compaction, selection, gathers, bucket hashing, spill partitioning,
  aggregate folds -- is driven with adversarial vectors (``None`` values,
  mixed types, NaN, magnitudes past 2**53, duplicate keys, empty and
  size-1 vectors) and the ``array`` backend's outputs are compared against
  the pure-Python oracle element for element.  Gathers must additionally
  preserve object *identity* (the array backend moves PyObject pointers,
  never converts values).
* **Plan-level**: every planner-producible plan shape is executed under
  ``kernel_backend="python"`` and ``"array"`` on identically seeded
  databases -- including the spill path at finite memory budgets and the
  adaptive conjunct-reordering path -- asserting identical rows (order
  included), identical event counters and identical cache/TLB hit+miss
  counts.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database, Session
from repro.execution import ExecutionContext, execute_plan
from repro.execution.kernels import (PYTHON_KERNELS, array_kernels_available,
                                     resolve_kernels, spill_partition_of)
from repro.hardware import SimulatedProcessor
from repro.query import (ExecutionConfig, JoinQuery, Planner, SelectionQuery,
                         avg, count_star, range_predicate)
from repro.query.expressions import (AggregateState, And, ComparisonOp,
                                     count_star as _count_star)
from repro.query.planner import DefaultPolicy
from repro.query.plans import (IndexPointLookupPlan, IndexRangeScanPlan,
                               SeqScanPlan)
from repro.storage.schema import ColumnType
from repro.systems import SYSTEM_B

pytestmark = pytest.mark.skipif(
    not array_kernels_available(),
    reason="numpy not installed; the array backend cannot be differenced")


def array_kernels():
    return resolve_kernels("array")


# ---------------------------------------------------------------------------
# Kernel-level differentials (Hypothesis)
# ---------------------------------------------------------------------------
#: Values a column vector can plausibly carry, tilted toward the edges the
#: array backend guards: None, bools, huge ints (past 2**53 and 2**63),
#: hash(-1) == -2, NaN/inf floats, floats at the exactness boundary.
scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-5, max_value=5),
    st.sampled_from([-1, -2, 2**53, -(2**53), 2**53 - 1, 2**61 - 2,
                     2**61 - 1, 2**63 - 1, -(2**63), 2**64, -(2**64) - 7]),
    st.floats(allow_nan=True, allow_infinity=True, width=32),
    st.sampled_from([0.5, -0.5, 9007199254740993.0, float(2**60)]),
    st.text(max_size=3),
)

vectors = st.lists(scalar_values, max_size=40)
int_vectors = st.lists(
    st.one_of(st.integers(min_value=-10**6, max_value=10**6),
              st.sampled_from([2**53 - 1, 2**53, -(2**53), 2**62, -(2**63)]),
              st.booleans()),
    max_size=40)
masks = st.lists(st.booleans(), max_size=40)
ops = st.sampled_from(list(ComparisonOp))


@settings(max_examples=150, deadline=None)
@given(op=ops, vector=vectors, constant=scalar_values)
def test_compare_const_matches_oracle(op, vector, constant):
    try:
        expected = PYTHON_KERNELS.compare_const(op, vector, constant)
    except TypeError:
        # Mixed-type comparisons raise in Python; the array backend is
        # allowed to raise too (same queries fail either way) -- but it
        # must not silently produce a mask.
        with pytest.raises(TypeError):
            array_kernels().compare_const(op, vector, constant)
        return
    got = array_kernels().compare_const(op, vector, constant)
    assert got == expected
    assert all(type(value) is bool for value in got)


@settings(max_examples=150, deadline=None)
@given(vector=vectors, low=scalar_values, high=scalar_values,
       include_low=st.booleans(), include_high=st.booleans())
def test_between_const_matches_oracle(vector, low, high, include_low,
                                      include_high):
    if low is None or high is None:
        return  # Between short-circuits None bounds before the kernel call
    try:
        expected = PYTHON_KERNELS.between_const(vector, low, high,
                                                include_low, include_high)
    except TypeError:
        with pytest.raises(TypeError):
            array_kernels().between_const(vector, low, high,
                                          include_low, include_high)
        return
    got = array_kernels().between_const(vector, low, high,
                                        include_low, include_high)
    assert got == expected
    assert all(type(value) is bool for value in got)


@settings(max_examples=100, deadline=None)
@given(mask_list=st.lists(masks, min_size=1, max_size=4).filter(
    lambda ms: len({len(m) for m in ms}) == 1))
def test_mask_combination_matches_oracle(mask_list):
    ak = array_kernels()
    assert ak.and_masks(mask_list) == PYTHON_KERNELS.and_masks(mask_list)
    assert ak.or_masks(mask_list) == PYTHON_KERNELS.or_masks(mask_list)
    assert ak.not_mask(mask_list[0]) == PYTHON_KERNELS.not_mask(mask_list[0])


@settings(max_examples=100, deadline=None)
@given(mask=masks)
def test_compact_matches_oracle(mask):
    expected = PYTHON_KERNELS.compact(mask)
    got = array_kernels().compact(mask)
    assert got == expected
    assert all(type(position) is int for position in got)


@settings(max_examples=100, deadline=None)
@given(data=st.data(), vector=vectors)
def test_gather_matches_oracle_and_preserves_identity(data, vector):
    if vector:
        positions = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(vector) - 1), max_size=60))
    else:
        positions = []
    expected = PYTHON_KERNELS.gather(vector, positions)
    got = array_kernels().gather(vector, positions)
    assert len(got) == len(expected)
    # Object identity, not just equality: the array backend must move
    # pointers, never coerce values to numpy scalars.
    assert all(a is b for a, b in zip(got, expected))


@settings(max_examples=100, deadline=None)
@given(data=st.data(), outcomes=masks)
def test_select_matches_oracle(data, outcomes):
    positions = data.draw(st.lists(st.integers(min_value=0, max_value=10**6),
                                   min_size=len(outcomes),
                                   max_size=len(outcomes)))
    expected = PYTHON_KERNELS.select(positions, outcomes)
    got = array_kernels().select(positions, outcomes)
    assert got == expected


@settings(max_examples=150, deadline=None)
@given(keys=vectors, buckets=st.integers(min_value=1, max_value=2**40))
def test_bucket_indices_match_python_hash(keys, buckets):
    expected = [hash(key) % buckets for key in keys]
    assert PYTHON_KERNELS.bucket_indices(keys, buckets) == expected
    assert array_kernels().bucket_indices(keys, buckets) == expected


@settings(max_examples=150, deadline=None)
@given(keys=vectors, level=st.integers(min_value=0, max_value=4),
       count=st.integers(min_value=1, max_value=64))
def test_spill_partitions_match_scalar_finalizer(keys, level, count):
    expected = [spill_partition_of(key, level, count) for key in keys]
    assert PYTHON_KERNELS.spill_partitions(keys, level, count) == expected
    assert array_kernels().spill_partitions(keys, level, count) == expected


def _state_fields(state: AggregateState):
    return (state.count, state.total, state.minimum, state.maximum)


def _assert_states_identical(left: AggregateState, right: AggregateState):
    # bool minima/maxima normalize to their int value: the oracle keeps the
    # original object (False), the array backend the extracted int (0).
    # They are `==`-identical everywhere results are rendered or compared.
    def norm(value):
        return int(value) if isinstance(value, bool) else value

    lf = tuple(norm(v) for v in _state_fields(left))
    rf = tuple(norm(v) for v in _state_fields(right))
    for a, b in zip(lf, rf):
        if isinstance(a, float) and isinstance(b, float) \
                and math.isnan(a) and math.isnan(b):
            continue
        assert a == b and type(a) is type(b), (lf, rf)


@settings(max_examples=150, deadline=None)
@given(chunks=st.lists(int_vectors, max_size=4))
def test_fold_matches_sequential_update(chunks):
    agg = avg("x")
    oracle, fast = AggregateState(agg), AggregateState(agg)
    ak = array_kernels()
    for chunk in chunks:
        PYTHON_KERNELS.fold(oracle, chunk)
        ak.fold(fast, chunk)
        _assert_states_identical(oracle, fast)


@settings(max_examples=80, deadline=None)
@given(chunks=st.lists(st.lists(st.one_of(
    st.floats(allow_nan=False, allow_infinity=True),
    st.integers(min_value=-2**60, max_value=2**60),
    st.none()), max_size=20), max_size=4))
def test_fold_mixed_and_float_chunks_match(chunks):
    """Float/mixed/None chunks route through the oracle fallback -- the
    result must still be identical to a pure sequential fold."""
    agg = avg("x")
    oracle, fast = AggregateState(agg), AggregateState(agg)
    ak = array_kernels()
    for chunk in chunks:
        try:
            PYTHON_KERNELS.fold(oracle, chunk)
        except TypeError:
            with pytest.raises(TypeError):
                ak.fold(fast, chunk)
            return
        ak.fold(fast, chunk)
        _assert_states_identical(oracle, fast)


@settings(max_examples=80, deadline=None)
@given(counts=st.lists(st.integers(min_value=0, max_value=10**6), max_size=6))
def test_fold_count_matches_sequential_update(counts):
    agg = _count_star()
    oracle, fast = AggregateState(agg), AggregateState(agg)
    ak = array_kernels()
    for count in counts:
        PYTHON_KERNELS.fold_count(oracle, count)
        ak.fold_count(fast, count)
        _assert_states_identical(oracle, fast)


def test_empty_and_single_row_vectors():
    ak = array_kernels()
    assert ak.compare_const(ComparisonOp.LT, [], 3) == []
    assert ak.compare_const(ComparisonOp.LT, [None], 3) == [False]
    assert ak.compact([]) == []
    assert ak.compact([True]) == [0]
    assert ak.gather([], []) == []
    assert ak.bucket_indices([], 7) == []
    assert ak.spill_partitions([], 1, 3) == []


# ---------------------------------------------------------------------------
# Plan-level differentials: every plan shape, python vs array
# ---------------------------------------------------------------------------
R_ROWS = 300
S_ROWS = 36
A2_DOMAIN = 50


def build_database(layout_style: str = "nsm", seed: int = 17) -> Database:
    db = Database()
    columns = [("a1", ColumnType.INT32), ("a2", ColumnType.INT32),
               ("a3", ColumnType.INT32)]
    db.create_table("R", columns, record_size=100, layout_style=layout_style)
    db.create_table("S", columns, record_size=100, layout_style=layout_style)
    rng = random.Random(seed)
    db.load("R", [(i + 1, rng.randint(1, A2_DOMAIN), rng.randint(0, 9_999))
                  for i in range(R_ROWS)])
    db.load("S", [(i + 1, rng.randint(1, A2_DOMAIN), rng.randint(0, 9_999))
                  for i in range(S_ROWS)])
    db.create_index("R", "a2")
    db.create_index("S", "a1", unique=True)
    return db


JOIN_QUERY = JoinQuery(left_table="R", right_table="S", left_column="a2",
                       right_column="a1", aggregates=(avg("R.a3"), count_star()))


def plan_shapes(catalog):
    """One plan per planner-producible shape (scan/index/joins/aggregate)."""
    shapes = {
        "seq_scan": SeqScanPlan(table="R", predicate=range_predicate("a2", 10, 30)),
        "seq_scan_bare": SeqScanPlan(table="R", predicate=None),
        "index_range": IndexRangeScanPlan(table="R", column="a2", low=10, high=30),
        "index_range_residual": IndexRangeScanPlan(
            table="R", column="a2", low=5, high=45,
            residual_predicate=range_predicate("a3", 1000, 9000)),
        "point_lookup": IndexPointLookupPlan(table="S", column="a1", value=7),
        "aggregate": Planner(catalog, SYSTEM_B).plan(SelectionQuery(
            table="R", aggregates=(avg("a3"), count_star()),
            predicate=range_predicate("a2", 5, 25))),
    }
    for algorithm in ("hash", "nested_loop", "index_nested_loop"):
        shapes[f"join_{algorithm}"] = Planner(
            catalog, DefaultPolicy(join_algorithm=algorithm)).plan(JOIN_QUERY)
    return shapes


def context_state(ctx: ExecutionContext):
    caches = ctx.processor.caches
    return (ctx.processor.counters.as_dict(),
            {level.name: level.stats.as_dict()
             for level in (caches.l1d, caches.l1i, caches.l2)},
            ctx.processor.dtlb.stats.as_dict(),
            dict(ctx.op_invocations),
            dict(ctx.io_stats))


def run_with_backend(db: Database, plan, backend: str, batch_size: int = 64):
    ctx = ExecutionContext(SimulatedProcessor(), SYSTEM_B, db.address_space,
                           kernels=resolve_kernels(backend))
    rows = execute_plan(plan, db.catalog, ctx,
                        execution=ExecutionConfig(engine="vectorized",
                                                  batch_size=batch_size))
    return rows, context_state(ctx)


@pytest.mark.parametrize("layout_style", ["nsm", "pax"])
@pytest.mark.parametrize("batch_size", [1, 7, 64])
def test_every_plan_shape_is_backend_identical(layout_style, batch_size):
    # A fresh (identically seeded) database per run: executing a plan warms
    # simulator-visible state, so reusing one db would measure run order,
    # not the backend.
    shape_names = list(plan_shapes(build_database(layout_style).catalog))
    for name in shape_names:
        outputs = {}
        for backend in ("python", "array"):
            db = build_database(layout_style)
            plan = plan_shapes(db.catalog)[name]
            outputs[backend] = run_with_backend(db, plan, backend, batch_size)
        rows_py, state_py = outputs["python"]
        rows_ar, state_ar = outputs["array"]
        assert rows_ar == rows_py, name
        assert [tuple(r) for r in rows_ar] == [tuple(r) for r in rows_py], \
            f"{name}: column order diverged"
        assert state_ar == state_py, f"{name}: simulated counts diverged"


def session_result(backend: str, layout: str = "nsm", **session_kwargs):
    db = build_database(layout)
    with Session(db, SYSTEM_B, os_interference=None, engine="vectorized",
                 kernel_backend=backend, **session_kwargs) as session:
        query = JOIN_QUERY
        result = session.execute(query)
        return (result.rows, result.counters.as_dict(),
                dict(session.context.io_stats))


@pytest.mark.parametrize("budget_fraction", [None, 2.0, 1.0, 0.4])
def test_spill_path_is_backend_identical(budget_fraction):
    budget = None
    if budget_fraction is not None:
        budget = int(S_ROWS * 100 * budget_fraction)
    python = session_result("python", memory_budget_bytes=budget)
    array = session_result("array", memory_budget_bytes=budget)
    assert array == python


@pytest.mark.parametrize("adaptivity", ["off", "greedy"])
def test_adaptive_conjuncts_are_backend_identical(adaptivity):
    query = SelectionQuery(
        table="R", aggregates=(count_star(),),
        predicate=And((range_predicate("a2", 5, 40),
                       range_predicate("a3", 500, 9_000),
                       range_predicate("a1", 2, 280))))
    results = {}
    for backend in ("python", "array"):
        db = build_database()
        with Session(db, SYSTEM_B, os_interference=None, engine="vectorized",
                     adaptivity=adaptivity, kernel_backend=backend) as session:
            result = session.execute(query)
            results[backend] = (result.rows, result.counters.as_dict())
    assert results["array"] == results["python"]


# ---------------------------------------------------------------------------
# Backend resolution
# ---------------------------------------------------------------------------
def test_resolve_kernels_explicit_backends():
    assert resolve_kernels("python") is PYTHON_KERNELS
    assert resolve_kernels("array").name == "array"
    assert resolve_kernels("auto").name in ("python", "array")
    with pytest.raises(ValueError):
        resolve_kernels("simd")


def test_execution_config_validates_backend():
    with pytest.raises(ValueError):
        ExecutionConfig(kernel_backend="simd")
    assert ExecutionConfig(kernel_backend="array").kernel_backend == "array"
