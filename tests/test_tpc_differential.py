"""Differential harness for the TPC workloads under the modern engine matrix.

The contract mirrors the microbenchmark differential suite
(``test_vectorized_equivalence.py``), lifted to whole workloads:

* **Rows are engine-independent.**  Every TPC-D query and every TPC-C
  statement (selections *and* updates) returns row-for-row identical
  results under the tuple and vectorized engines, at every charge mode,
  worker count and kernel backend.  Across engines the ``query_setup``
  charge counts also match (the PR 1 contract); the *hardware* counts
  differ across engines by design -- that difference IS the engine
  ablation.
* **Counts are identical across the identity walls.**  For a fixed engine,
  the simulated event counters are bit-identical across
  ``charge_mode="per_address"`` vs ``"span"``, ``workers`` 1 vs 4, and the
  python vs array kernel backends -- each is a simulator implementation
  choice, never a model change.

Everything measures on the warmed TPC grids (one build per layout,
checkpoints restored per arm), so the suite doubles as the regression test
that warmed-build reuse is invisible -- including for TPC-C, whose updates
mutate pages in place and rely on the data checkpoint.
"""

from __future__ import annotations

import pytest

from repro.engine.session import Session
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.systems.vendors import oltp_variant, system_by_key
from repro.workloads.micro import MicroWorkloadConfig
from repro.workloads.tpcc import TPCCConfig
from repro.workloads.tpcd import TPCDConfig

TXNS = 8
ENGINES = ("tuple", "vectorized")
CHARGE_MODES = ("per_address", "span")
WORKER_COUNTS = (1, 4)
KERNEL_BACKENDS = ("python", "array")


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
        return True
    except ImportError:
        return False


def make_runner() -> ExperimentRunner:
    return ExperimentRunner(ExperimentConfig(
        micro=MicroWorkloadConfig(scale=1 / 2000),
        tpcd=TPCDConfig(lineitem_rows=300, orders_rows=60, part_rows=30,
                        supplier_rows=15),
        tpcc=TPCCConfig(scale=0.003),
        tpcc_transactions=TXNS,
        os_interference=False))


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    return make_runner()


def backends():
    return KERNEL_BACKENDS if _numpy_available() else ("python",)


# ---------------------------------------------------------------- TPC-D rows
def _tpcd_session(runner, engine, charge_mode="span", workers=1,
                  kernel_backend="auto", layout="nsm") -> Session:
    database, checkpoint = runner.tpcd_grid_database(layout)
    database.address_space.restore(checkpoint)
    return Session(database, system_by_key("B"), spec=runner.config.spec,
                   os_interference=None, engine=engine,
                   charge_mode=charge_mode, parallelism=workers,
                   kernel_backend=kernel_backend)


def _tpcd_rows_and_setups(runner, **session_knobs):
    """Per-query rows plus total query_setup charges for one matrix arm."""
    rows = []
    setups = 0
    with _tpcd_session(runner, **session_knobs) as session:
        for query in runner.tpcd_workload.queries():
            result = session.execute(query, warmup_runs=0)
            rows.append(result.rows)
            setups += result.routine_invocations.get("query_setup", 0)
    return rows, setups


@pytest.mark.parametrize("layout", ("nsm", "pax"))
def test_tpcd_rows_identical_across_matrix(runner, layout):
    reference_rows, reference_setups = _tpcd_rows_and_setups(
        runner, engine="tuple", layout=layout)
    assert len(reference_rows) == runner.tpcd_workload.query_count()
    assert all(rows for rows in reference_rows), \
        "every TPC-D query aggregates to at least one row"
    for engine in ENGINES:
        for charge_mode in CHARGE_MODES:
            for workers in WORKER_COUNTS:
                for backend in backends():
                    rows, setups = _tpcd_rows_and_setups(
                        runner, engine=engine, charge_mode=charge_mode,
                        workers=workers, kernel_backend=backend,
                        layout=layout)
                    assert rows == reference_rows, (
                        f"rows diverged: {engine}/{charge_mode}/w{workers}"
                        f"/{backend}/{layout}")
                    assert setups == reference_setups, (
                        f"query_setup charges diverged: {engine}/"
                        f"{charge_mode}/w{workers}/{backend}/{layout}")


# -------------------------------------------------------------- TPC-D counts
def test_tpcd_counts_identical_across_walls(runner):
    """Charge mode, workers and kernel backend never change the counts."""
    for engine in ENGINES:
        reference = runner.tpcd_grid_result(
            "nsm", engine=engine, charge_mode="per_address").counters.as_dict()
        for charge_mode in CHARGE_MODES:
            for workers in WORKER_COUNTS:
                for backend in backends():
                    arm = runner.tpcd_grid_result(
                        "nsm", engine=engine, charge_mode=charge_mode,
                        workers=workers, kernel_backend=backend)
                    assert arm.counters.as_dict() == reference, (
                        f"counts diverged: {engine}/{charge_mode}"
                        f"/w{workers}/{backend}")


def test_tpcd_engines_differ_in_counts_by_design(runner):
    """Sanity: tuple vs vectorized IS a model change (the ablation)."""
    tuple_arm = runner.tpcd_grid_result("nsm", engine="tuple")
    vector_arm = runner.tpcd_grid_result("nsm", engine="vectorized")
    assert (tuple_arm.counters.get("INST_RETIRED")
            != vector_arm.counters.get("INST_RETIRED"))


# ---------------------------------------------------------------- TPC-C rows
def _tpcc_statement_rows(runner, engine, charge_mode="span", workers=1,
                         kernel_backend="auto", layout="nsm"):
    """Rows of every statement of a fixed transaction stream, one arm.

    Both checkpoints are restored first (the mix updates pages in place),
    then every statement executes through ``Session.execute`` so its rows
    -- selection aggregates and ``{"updated": n}`` acknowledgements alike
    -- are observable.  The stream is fixed by seed, so arms see identical
    statement sequences against identical starting states.
    """
    database, workload, checkpoint, data = runner.tpcc_grid_database(layout)
    database.address_space.restore(checkpoint)
    database.data_restore(data)
    rows = []
    setups = 0
    with Session(database, oltp_variant(system_by_key("B")),
                 spec=runner.config.spec, os_interference=None,
                 engine=engine, charge_mode=charge_mode, parallelism=workers,
                 kernel_backend=kernel_backend) as session:
        for txn in workload.transactions(TXNS, seed=1234):
            for statement in txn.statements:
                result = session.execute(statement, warmup_runs=0)
                rows.append(result.rows)
                setups += result.routine_invocations.get("query_setup", 0)
    return rows, setups


@pytest.mark.parametrize("layout", ("nsm", "pax"))
def test_tpcc_rows_identical_across_matrix(runner, layout):
    reference_rows, reference_setups = _tpcc_statement_rows(
        runner, engine="tuple", layout=layout)
    assert any(row == [{"updated": 1}] for row in reference_rows), \
        "the mix must contain applied updates"
    for engine in ENGINES:
        for charge_mode in CHARGE_MODES:
            for workers in WORKER_COUNTS:
                for backend in backends():
                    rows, setups = _tpcc_statement_rows(
                        runner, engine=engine, charge_mode=charge_mode,
                        workers=workers, kernel_backend=backend,
                        layout=layout)
                    assert rows == reference_rows, (
                        f"rows diverged: {engine}/{charge_mode}/w{workers}"
                        f"/{backend}/{layout}")
                    assert setups == reference_setups, (
                        f"query_setup charges diverged: {engine}/"
                        f"{charge_mode}/w{workers}/{backend}/{layout}")


# -------------------------------------------------------------- TPC-C counts
def _tpcc_counters(runner, engine, charge_mode="span", workers=1,
                   kernel_backend="auto", layout="nsm"):
    """Full measured counters of the driven mix for one matrix arm."""
    database, workload, checkpoint, data = runner.tpcc_grid_database(layout)
    database.address_space.restore(checkpoint)
    database.data_restore(data)
    with Session(database, oltp_variant(system_by_key("B")),
                 spec=runner.config.spec, os_interference=None,
                 engine=engine, charge_mode=charge_mode, parallelism=workers,
                 kernel_backend=kernel_backend) as session:
        counters, _, _, executed = workload.run(
            session, transactions=TXNS, warmup_transactions=2)
    assert executed == TXNS
    return counters.as_dict()


def test_tpcc_counts_identical_across_walls(runner):
    for engine in ENGINES:
        reference = _tpcc_counters(runner, engine, charge_mode="per_address")
        for charge_mode in CHARGE_MODES:
            for workers in WORKER_COUNTS:
                for backend in backends():
                    arm = _tpcc_counters(runner, engine,
                                         charge_mode=charge_mode,
                                         workers=workers,
                                         kernel_backend=backend)
                    assert arm == reference, (
                        f"counts diverged: {engine}/{charge_mode}"
                        f"/w{workers}/{backend}")


def test_tpcc_grid_repeat_identity(runner):
    """The warmed TPC-C grid is invisible despite in-place updates."""
    first = _tpcc_counters(runner, "vectorized")
    second = _tpcc_counters(runner, "vectorized")
    assert first == second
