"""Tests for the platform specifications (Table 4.1)."""

import pytest

from repro.hardware.specs import (BranchSpec, CacheSpec, MemorySpec, PENTIUM_II_XEON,
                                  PipelineSpec, TLBSpec, larger_btb_xeon, larger_l2_xeon,
                                  pentium_ii_xeon)


class TestCacheSpec:
    def test_pentium_l1d_geometry(self):
        l1d = PENTIUM_II_XEON.l1d
        assert l1d.size_bytes == 16 * 1024
        assert l1d.line_bytes == 32
        assert l1d.associativity == 4
        assert l1d.num_lines == 512
        assert l1d.num_sets == 128

    def test_pentium_l2_geometry(self):
        l2 = PENTIUM_II_XEON.l2
        assert l2.size_bytes == 512 * 1024
        assert l2.num_sets == 4096
        assert l2.misses_outstanding == 4

    def test_l1_miss_penalty_matches_table_4_1(self):
        assert PENTIUM_II_XEON.l1d.miss_penalty_cycles == 4
        assert PENTIUM_II_XEON.l1i.miss_penalty_cycles == 4

    def test_invalid_line_size_rejected(self):
        with pytest.raises(ValueError):
            CacheSpec(name="bad", size_bytes=16 * 1024, line_bytes=30)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            CacheSpec(name="bad", size_bytes=3 * 1024, line_bytes=32, associativity=4)

    def test_size_not_divisible_rejected(self):
        with pytest.raises(ValueError):
            CacheSpec(name="bad", size_bytes=1000, line_bytes=32, associativity=4)


class TestTLBAndBranchSpecs:
    def test_itlb_miss_penalty_is_32_cycles(self):
        assert PENTIUM_II_XEON.itlb.miss_penalty_cycles == 32

    def test_tlb_requires_positive_entries(self):
        with pytest.raises(ValueError):
            TLBSpec(name="bad", entries=0)

    def test_branch_misprediction_penalty_is_17_cycles(self):
        assert PENTIUM_II_XEON.branch.misprediction_penalty_cycles == 17

    def test_btb_geometry(self):
        branch = PENTIUM_II_XEON.branch
        assert branch.btb_entries == 512
        assert branch.btb_sets * branch.btb_associativity == branch.btb_entries

    def test_btb_entries_must_divide(self):
        with pytest.raises(ValueError):
            BranchSpec(btb_entries=510, btb_associativity=4)


class TestMemoryAndPipelineSpecs:
    def test_memory_latency_in_measured_range(self):
        assert 60 <= PENTIUM_II_XEON.memory.latency_cycles <= 70

    def test_memory_rejects_non_positive_latency(self):
        with pytest.raises(ValueError):
            MemorySpec(latency_cycles=0)

    def test_retire_width_is_three_uops(self):
        assert PENTIUM_II_XEON.pipeline.retire_width_uops == 3

    def test_pipeline_rejects_sub_unit_uop_expansion(self):
        with pytest.raises(ValueError):
            PipelineSpec(uops_per_instruction=0.9)


class TestProcessorSpec:
    def test_xeon_does_not_enforce_inclusion(self):
        assert PENTIUM_II_XEON.inclusive_l2 is False

    def test_table_4_1_rendering_contains_key_facts(self):
        table = PENTIUM_II_XEON.table_4_1()
        assert table["L1 (split)"]["Cache size"] == "16KB Data / 16KB Instruction"
        assert table["L2"]["Cache size"] == "512KB"
        assert table["L1 (split)"]["Associativity"] == "4-way"
        assert table["L2"]["Write Policy"] == "Write-back"

    def test_factory_returns_equal_specs(self):
        assert pentium_ii_xeon() == PENTIUM_II_XEON

    def test_larger_l2_variant(self):
        spec = larger_l2_xeon(2048)
        assert spec.l2.size_bytes == 2 * 1024 * 1024
        assert spec.l1d == PENTIUM_II_XEON.l1d

    def test_larger_btb_variant(self):
        spec = larger_btb_xeon(16384)
        assert spec.branch.btb_entries == 16384

    def test_with_overrides_replaces_only_requested_field(self):
        spec = PENTIUM_II_XEON.with_overrides(clock_mhz=450)
        assert spec.clock_mhz == 450
        assert spec.l2 == PENTIUM_II_XEON.l2
