"""Tests for the set-associative cache model and the split-L1/unified-L2 hierarchy."""

import pytest

from repro.hardware.cache import (Cache, CacheHierarchy, PORT_DATA_READ, PORT_DATA_WRITE,
                                  PORT_INSTRUCTION)
from repro.hardware.specs import CacheSpec, PENTIUM_II_XEON


def small_cache(size=1024, line=32, ways=2, write_back=True, next_level=None) -> Cache:
    spec = CacheSpec(name="toy", size_bytes=size, line_bytes=line, associativity=ways,
                     write_back=write_back)
    return Cache(spec, next_level=next_level)


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0x1000, PORT_DATA_READ) == 1
        assert cache.access(0x1000, PORT_DATA_READ) == 0
        assert cache.stats.misses[PORT_DATA_READ] == 1
        assert cache.stats.accesses[PORT_DATA_READ] == 2

    def test_same_line_different_bytes_is_one_miss(self):
        cache = small_cache()
        assert cache.access(0x1000, PORT_DATA_READ) == 1
        assert cache.access(0x101F, PORT_DATA_READ) == 0

    def test_access_spanning_two_lines_counts_two(self):
        cache = small_cache()
        misses = cache.access(0x101E, PORT_DATA_READ, size=8)
        assert misses == 2

    def test_line_address_alignment(self):
        cache = small_cache()
        assert cache.line_address(0x1234) == 0x1220

    def test_lines_spanned(self):
        cache = small_cache()
        assert list(cache.lines_spanned(0, 32)) == [0]
        assert list(cache.lines_spanned(0, 33)) == [0, 1]
        assert list(cache.lines_spanned(31, 2)) == [0, 1]


class TestLRUReplacement:
    def test_lru_victim_is_evicted(self):
        # 2-way, 32B lines, 1KB -> 16 sets.  Addresses that share set 0:
        cache = small_cache(size=1024, ways=2)
        set_stride = 16 * 32  # addresses this far apart map to the same set
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a, PORT_DATA_READ)
        cache.access(b, PORT_DATA_READ)
        cache.access(a, PORT_DATA_READ)      # a becomes MRU
        cache.access(c, PORT_DATA_READ)      # evicts b (LRU)
        assert cache.contains(a)
        assert cache.contains(c)
        assert not cache.contains(b)

    def test_working_set_within_capacity_stops_missing(self):
        cache = small_cache(size=1024, ways=2)
        addresses = [i * 32 for i in range(16)]   # 512 B working set
        for addr in addresses:
            cache.access(addr, PORT_DATA_READ)
        before = cache.stats.total_misses
        for _ in range(3):
            for addr in addresses:
                cache.access(addr, PORT_DATA_READ)
        assert cache.stats.total_misses == before

    def test_cyclic_sweep_larger_than_cache_always_misses(self):
        cache = small_cache(size=1024, ways=2)
        addresses = [i * 32 for i in range(64)]   # 2 KB > 1 KB capacity
        for addr in addresses:
            cache.access(addr, PORT_DATA_READ)
        before = cache.stats.total_misses
        for addr in addresses:
            cache.access(addr, PORT_DATA_READ)
        assert cache.stats.total_misses - before == len(addresses)

    def test_resident_lines_never_exceeds_capacity(self):
        cache = small_cache(size=1024, ways=2)
        for i in range(200):
            cache.access(i * 32, PORT_DATA_READ)
        assert cache.resident_lines() <= cache.spec.num_lines


class TestWriteBehaviour:
    def test_writeback_on_dirty_eviction(self):
        l2 = small_cache(size=4096, ways=4)
        l1 = small_cache(size=1024, ways=2, next_level=l2)
        set_stride = 16 * 32
        l1.access(0, PORT_DATA_WRITE, write=True)
        l1.access(set_stride, PORT_DATA_READ)
        l1.access(2 * set_stride, PORT_DATA_READ)   # evicts the dirty line
        assert l1.stats.writebacks == 1

    def test_write_through_forwards_to_next_level(self):
        l2 = small_cache(size=4096, ways=4)
        l1 = small_cache(size=1024, ways=2, write_back=False, next_level=l2)
        l1.access(0, PORT_DATA_WRITE, write=True)
        assert l2.stats.accesses[PORT_DATA_WRITE] >= 1

    def test_clean_eviction_does_not_write_back(self):
        cache = small_cache(size=1024, ways=2)
        set_stride = 16 * 32
        for i in range(3):
            cache.access(i * set_stride, PORT_DATA_READ)
        assert cache.stats.writebacks == 0


class TestInvalidation:
    def test_invalidate_all(self):
        cache = small_cache()
        for i in range(8):
            cache.access(i * 32, PORT_DATA_READ)
        dropped = cache.invalidate_all()
        assert dropped == 8
        assert cache.resident_lines() == 0

    def test_invalidate_fraction_drops_roughly_that_share(self):
        cache = small_cache(size=4096, ways=4)
        for i in range(128):
            cache.access(i * 32, PORT_DATA_READ)
        resident = cache.resident_lines()
        dropped = cache.invalidate_fraction(0.5)
        assert 0 < dropped <= resident
        assert cache.resident_lines() == resident - dropped

    def test_invalidate_fraction_zero_is_noop(self):
        cache = small_cache()
        cache.access(0, PORT_DATA_READ)
        assert cache.invalidate_fraction(0.0) == 0
        assert cache.contains(0)


class TestWarmup:
    def test_warm_does_not_change_statistics(self):
        cache = small_cache()
        cache.warm([i * 32 for i in range(8)])
        assert cache.stats.total_accesses == 0
        assert cache.stats.total_misses == 0
        # ... but the lines are resident:
        assert cache.access(0, PORT_DATA_READ) == 0


class TestHierarchy:
    def make_hierarchy(self) -> CacheHierarchy:
        return CacheHierarchy(PENTIUM_II_XEON.l1d, PENTIUM_II_XEON.l1i, PENTIUM_II_XEON.l2)

    def test_l1_miss_propagates_to_l2(self):
        hierarchy = self.make_hierarchy()
        hierarchy.read(0x10000)
        assert hierarchy.l1d.stats.total_misses == 1
        assert hierarchy.l2.stats.total_misses == 1
        hierarchy.read(0x10000)
        assert hierarchy.l2.stats.total_accesses == 1  # second access hits L1

    def test_instruction_and_data_ports_kept_separate_in_l2(self):
        hierarchy = self.make_hierarchy()
        hierarchy.fetch(0x2000)
        hierarchy.read(0x90000)
        snapshot = hierarchy.snapshot()
        assert snapshot.l2_instruction_misses == 1
        assert snapshot.l2_data_misses == 1

    def test_l1d_eviction_data_still_in_l2(self):
        hierarchy = self.make_hierarchy()
        # Stream 32 KB through the 16 KB L1D; early lines remain in the 512 KB L2.
        for i in range(1024):
            hierarchy.read(i * 32)
        l2_misses_before = hierarchy.l2.stats.total_misses
        hierarchy.read(0)           # misses L1D again but hits L2
        assert hierarchy.l1d.stats.total_misses == 1025
        assert hierarchy.l2.stats.total_misses == l2_misses_before

    def test_snapshot_and_reset(self):
        hierarchy = self.make_hierarchy()
        hierarchy.read(0)
        hierarchy.fetch(64)
        snap = hierarchy.snapshot()
        assert snap.l1d_misses == 1
        assert snap.l1i_misses == 1
        hierarchy.reset_stats()
        assert hierarchy.snapshot().l1d_misses == 0
