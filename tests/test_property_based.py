"""Property-based tests (hypothesis) for the core data structures and invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.execution import ExecutionContext, execute_plan
from repro.hardware import SimulatedProcessor
from repro.hardware.cache import Cache, PORT_DATA_READ, PORT_DATA_WRITE
from repro.hardware.branch import BranchPredictor
from repro.hardware.specs import BranchSpec, CacheSpec, TLBSpec
from repro.hardware.tlb import TLB
from repro.index.btree import BTreeIndex
from repro.query import ExecutionConfig
from repro.query.expressions import range_predicate
from repro.query.plans import IndexRangeScanPlan, SeqScanPlan
from repro.storage import Catalog, microbenchmark_schema
from repro.storage.address_space import AddressSpace
from repro.storage.page import PaxPage, RecordId, SlottedPage
from repro.storage.schema import Column, ColumnType, RecordLayout, Schema
from repro.systems import SYSTEM_B

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

SCAN_SETTINGS = settings(max_examples=25, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# Cache invariants
# ---------------------------------------------------------------------------
@SETTINGS
@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300),
       ways=st.sampled_from([1, 2, 4]))
def test_cache_miss_count_bounded_and_capacity_respected(addresses, ways):
    cache = Cache(CacheSpec(name="p", size_bytes=2048, line_bytes=32, associativity=ways))
    misses = sum(cache.access(addr, PORT_DATA_READ) for addr in addresses)
    distinct_lines = len({addr >> 5 for addr in addresses})
    assert misses >= distinct_lines or misses == len(addresses)
    assert distinct_lines <= misses <= len(addresses)
    assert cache.resident_lines() <= cache.spec.num_lines
    assert cache.stats.total_accesses == len(addresses)


@SETTINGS
@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200))
def test_cache_repeating_same_sequence_second_pass_never_misses_if_it_fits(addresses):
    cache = Cache(CacheSpec(name="p", size_bytes=64 * 1024, line_bytes=32, associativity=4))
    for addr in addresses:
        cache.access(addr, PORT_DATA_READ)
    before = cache.stats.total_misses
    for addr in addresses:
        cache.access(addr, PORT_DATA_READ)
    # 64 KB of cache versus <= 64 KB of touched addresses: everything fits.
    assert cache.stats.total_misses == before


@SETTINGS
@given(writes=st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1, max_size=200))
def test_writebacks_never_exceed_dirty_line_installs(writes):
    cache = Cache(CacheSpec(name="p", size_bytes=1024, line_bytes=32, associativity=2))
    for addr in writes:
        cache.access(addr, PORT_DATA_WRITE, write=True)
    assert cache.stats.writebacks <= cache.stats.misses[PORT_DATA_WRITE]


# ---------------------------------------------------------------------------
# TLB and branch predictor invariants
# ---------------------------------------------------------------------------
@SETTINGS
@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 24), min_size=1, max_size=200))
def test_tlb_misses_bounded_by_distinct_pages(addresses):
    tlb = TLB(TLBSpec(name="p", entries=8, page_bytes=4096))
    misses = sum(tlb.access(addr) for addr in addresses)
    distinct_pages = len({addr >> 12 for addr in addresses})
    assert distinct_pages <= misses <= len(addresses)
    assert tlb.resident_pages() <= 8


@SETTINGS
@given(outcomes=st.lists(st.booleans(), min_size=1, max_size=400))
def test_branch_stats_are_consistent(outcomes):
    predictor = BranchPredictor(BranchSpec())
    for taken in outcomes:
        predictor.execute(0x1234, taken, backward=True)
    stats = predictor.stats
    assert stats.branches == len(outcomes)
    assert stats.taken == sum(outcomes)
    assert 0 <= stats.mispredictions <= stats.branches
    assert stats.btb_hits + stats.btb_misses == stats.branches


@SETTINGS
@given(outcomes=st.lists(st.booleans(), min_size=64, max_size=400))
def test_constant_branch_is_learned(outcomes):
    """After warm-up, an always-taken branch should almost never mispredict."""
    predictor = BranchPredictor(BranchSpec())
    for _ in range(8):
        predictor.execute(0x40, True, backward=True)
    mispredictions = sum(predictor.execute(0x40, True, backward=True) for _ in outcomes)
    assert mispredictions == 0


# ---------------------------------------------------------------------------
# Record layout round-trip
# ---------------------------------------------------------------------------
@SETTINGS
@given(values=st.tuples(st.integers(-2**31, 2**31 - 1),
                        st.integers(-2**31, 2**31 - 1),
                        st.integers(-2**31, 2**31 - 1)),
       padding=st.integers(min_value=0, max_value=188))
def test_record_encode_decode_roundtrip(values, padding):
    schema = Schema.of(Column("a1"), Column("a2"), Column("a3"))
    layout = RecordLayout.build(schema, record_size=12 + padding)
    data = layout.encode(values)
    assert len(data) == 12 + padding
    assert layout.decode(data) == values
    for name, expected in zip(("a1", "a2", "a3"), values):
        assert layout.decode_column(data, name) == expected


# ---------------------------------------------------------------------------
# Slotted page invariants
# ---------------------------------------------------------------------------
@SETTINGS
@given(sizes=st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=60))
def test_slotted_page_never_corrupts_existing_records(sizes):
    page = SlottedPage(0, 0x2000_0000, page_size=4096)
    stored = {}
    for i, size in enumerate(sizes):
        payload = bytes([i % 256]) * size
        if not page.has_room_for(size):
            break
        slot = page.insert(payload)
        stored[slot] = payload
    for slot, payload in stored.items():
        assert page.record_bytes(slot) == payload
    assert page.live_records == len(stored)


# ---------------------------------------------------------------------------
# B+-tree invariants
# ---------------------------------------------------------------------------
@SETTINGS
@given(keys=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=300))
def test_btree_insert_preserves_sorted_order_and_membership(keys):
    index = BTreeIndex("p", AddressSpace(), leaf_capacity=8, internal_capacity=8)
    for position, key in enumerate(keys):
        index.insert(key, RecordId(0, position))
    index.check_invariants()
    assert index.keys_in_order() == sorted(keys)
    for key in set(keys):
        assert len(index.search(key)) == keys.count(key)


@SETTINGS
@given(keys=st.lists(st.integers(min_value=0, max_value=5_000), min_size=1, max_size=300),
       low=st.integers(min_value=0, max_value=5_000),
       width=st.integers(min_value=0, max_value=1_000))
def test_btree_range_search_matches_filter(keys, low, width):
    high = low + width
    index = BTreeIndex("p", AddressSpace(), leaf_capacity=16, internal_capacity=16)
    index.bulk_load((key, RecordId(0, position)) for position, key in enumerate(keys))
    found = [m.key for m in index.range_search(low, high, include_low=True, include_high=True)]
    assert found == sorted(k for k in keys if low <= k <= high)


@SETTINGS
@given(keys=st.sets(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
def test_btree_delete_removes_exactly_the_key(keys):
    keys = sorted(keys)
    index = BTreeIndex("p", AddressSpace(), leaf_capacity=8, internal_capacity=8)
    index.bulk_load((key, RecordId(0, i)) for i, key in enumerate(keys))
    victim = keys[len(keys) // 2]
    assert index.delete(victim) == 1
    assert index.search(victim) == []
    assert len(index) == len(keys) - 1
    survivors = [k for k in keys if k != victim]
    assert index.keys_in_order() == survivors


# ---------------------------------------------------------------------------
# Predicate semantics match the planner's bounds
# ---------------------------------------------------------------------------
@SETTINGS
@given(values=st.lists(st.integers(min_value=0, max_value=1_000), min_size=1, max_size=200),
       low=st.integers(min_value=-10, max_value=1_000),
       width=st.integers(min_value=0, max_value=500))
def test_range_predicate_agrees_with_python_filter(values, low, width):
    high = low + width
    predicate = range_predicate("a2", low, high)
    selected = [v for v in values if predicate.evaluate({"a2": v})]
    assert selected == [v for v in values if low < v < high]


# ---------------------------------------------------------------------------
# Vectorized batch boundaries never change the row stream
# ---------------------------------------------------------------------------
def _scan_catalog(rows=240, seed=1999) -> Catalog:
    import random
    catalog = Catalog()
    schema, _ = microbenchmark_schema(100, "R")
    table = catalog.create_table("R", schema, record_size=100)
    rng = random.Random(seed)
    table.insert_many((i, rng.randint(0, 100), rng.randint(0, 1000))
                      for i in range(rows))
    catalog.create_index("R", "a2")
    return catalog


#: Shared dataset: the examples vary predicate and batch geometry, not data.
_SCAN_CATALOG = _scan_catalog()


def _run_engines(plan, batch_size):
    rows = {}
    for execution in (None, ExecutionConfig(engine="vectorized", batch_size=batch_size)):
        ctx = ExecutionContext(SimulatedProcessor(os_interference=None), SYSTEM_B,
                               _SCAN_CATALOG.address_space)
        name = "vectorized" if execution else "tuple"
        rows[name] = execute_plan(plan, _SCAN_CATALOG, ctx, execution=execution)
    return rows


@SCAN_SETTINGS
@given(low=st.integers(min_value=-10, max_value=100),
       width=st.integers(min_value=0, max_value=110),
       batch_size=st.integers(min_value=1, max_value=300))
def test_vectorized_seq_scan_never_drops_duplicates_or_reorders(low, width, batch_size):
    """Whatever the predicate selectivity and batch geometry, the vectorized
    scan must emit exactly the tuple engine's ordered row stream."""
    plan = SeqScanPlan(table="R", predicate=range_predicate("a2", low, low + width))
    rows = _run_engines(plan, batch_size)
    assert rows["vectorized"] == rows["tuple"]
    # And the stream is the ground-truth filter over storage order.
    table = _SCAN_CATALOG.table("R")
    expected = [a2 for _, a2, _ in (table.heap.read_values(e.rid)
                                    for e in table.heap.scan())
                if low < a2 < low + width]
    assert [row["a2"] for row in rows["tuple"]] == expected


@SCAN_SETTINGS
@given(low=st.integers(min_value=0, max_value=100),
       width=st.integers(min_value=0, max_value=60),
       batch_size=st.integers(min_value=1, max_value=300))
def test_vectorized_index_scan_matches_tuple_row_stream(low, width, batch_size):
    plan = IndexRangeScanPlan(table="R", column="a2", low=low, high=low + width,
                              include_low=True, include_high=True)
    rows = _run_engines(plan, batch_size)
    assert rows["vectorized"] == rows["tuple"]
    produced = [row["a2"] for row in rows["tuple"]]
    assert produced == sorted(produced)  # index order preserved across batches


@SETTINGS
@given(values=st.lists(st.tuples(st.integers(-2**31, 2**31 - 1),
                                 st.integers(-2**31, 2**31 - 1),
                                 st.integers(-2**31, 2**31 - 1)),
                       min_size=1, max_size=60),
       padding=st.integers(min_value=0, max_value=88))
def test_pax_page_roundtrips_any_records(values, padding):
    schema = Schema.of(Column("a1"), Column("a2"), Column("a3"))
    layout = RecordLayout.build(schema, record_size=12 + padding)
    page = PaxPage(0, 0x4000_0000, layout, page_size=8192)
    stored = {}
    for row in values:
        if not page.has_room_for(layout.record_size):
            break
        stored[page.insert(layout.encode(row))] = row
    for slot, row in stored.items():
        assert layout.decode(page.record_bytes(slot)) == row
    for name in ("a1", "a2", "a3"):
        index = schema.index_of(name)
        slots = sorted(stored)
        assert page.column_values(name, slots) == [stored[s][index] for s in slots]


# ---------------------------------------------------------------------------
# Address space invariants
# ---------------------------------------------------------------------------
@SETTINGS
@given(requests=st.lists(st.tuples(st.sampled_from(["heap", "index", "workspace", "code"]),
                                   st.integers(min_value=1, max_value=10_000)),
                         min_size=1, max_size=100))
def test_address_space_allocations_never_overlap(requests):
    space = AddressSpace()
    allocations = []
    for region, size in requests:
        base = space.allocate(region, size)
        allocations.append((base, size, region))
        assert space.region_of(base) == region
    allocations.sort()
    for (b1, s1, _), (b2, _, _) in zip(allocations, allocations[1:]):
        assert b1 + s1 <= b2
