"""Tests for the microbenchmark, sweeps, TPC-D-style and TPC-C-style workloads."""

import pytest

from repro.engine import Session
from repro.query.plans import JoinQuery, SelectionQuery, UpdateQuery
from repro.systems import SYSTEM_B
from repro.systems.vendors import oltp_variant
from repro.workloads import (JOIN_FANOUT, MicroWorkload, MicroWorkloadConfig,
                             PAPER_R_ROWS, PAPER_S_ROWS, RECORD_SIZE_POINTS,
                             SELECTIVITY_POINTS, TPCCConfig, TPCCWorkload, TPCDConfig,
                             TPCDWorkload, build_database_for_point, record_size_sweep,
                             selectivity_sweep)


class TestMicroWorkloadConfig:
    def test_paper_scale_matches_published_sizes(self):
        config = MicroWorkloadConfig(scale=1.0)
        assert config.r_rows == PAPER_R_ROWS == 1_200_000
        assert config.s_rows == PAPER_S_ROWS == 40_000
        assert config.a2_domain == 40_000
        assert config.r_bytes == 120_000_000

    def test_join_fanout_preserved_at_any_scale(self):
        for scale in (1.0, 0.1, 0.01, 1 / 200):
            config = MicroWorkloadConfig(scale=scale)
            assert config.r_rows // config.s_rows == JOIN_FANOUT

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            MicroWorkloadConfig(scale=0)
        with pytest.raises(ValueError):
            MicroWorkloadConfig(record_size=8)
        with pytest.raises(ValueError):
            MicroWorkloadConfig(selectivity=1.5)


class TestMicroWorkloadData:
    def test_build_creates_r_and_s(self, micro_workload, micro_database):
        config = micro_workload.config
        assert micro_database.row_count("R") == config.r_rows
        assert micro_database.row_count("S") == config.s_rows
        assert micro_database.table("R").layout.record_size == config.record_size

    def test_a2_values_lie_in_domain(self, micro_workload):
        domain = micro_workload.config.a2_domain
        assert all(1 <= a2 <= domain for _, a2, _ in micro_workload.generate_r_rows())

    def test_s_primary_key_is_dense(self, micro_workload):
        keys = [a1 for a1, _, _ in micro_workload.generate_s_rows()]
        assert keys == list(range(1, micro_workload.config.s_rows + 1))

    def test_generation_is_deterministic(self):
        workload = MicroWorkload(MicroWorkloadConfig(scale=1 / 2000))
        assert list(workload.generate_r_rows()) == list(workload.generate_r_rows())

    def test_bounds_for_selectivity(self, micro_workload):
        domain = micro_workload.config.a2_domain
        low, high = micro_workload.bounds_for_selectivity(0.10)
        selected = round(0.10 * domain)
        assert (low, high) == (0, selected + 1)
        assert micro_workload.bounds_for_selectivity(0.0) == (0, 1)
        assert micro_workload.bounds_for_selectivity(1.0) == (0, domain + 1)
        with pytest.raises(ValueError):
            micro_workload.bounds_for_selectivity(2.0)

    def test_expected_selected_rows_tracks_selectivity(self, micro_workload):
        rows = micro_workload.config.r_rows
        selected = micro_workload.expected_selected_rows(0.10)
        assert selected == pytest.approx(0.10 * rows, rel=0.35)
        assert micro_workload.expected_selected_rows(0.0) == 0
        assert micro_workload.expected_selected_rows(1.0) == rows

    def test_query_objects(self, micro_workload):
        srs = micro_workload.sequential_range_selection(0.10)
        irs = micro_workload.indexed_range_selection(0.10)
        join = micro_workload.sequential_join()
        assert isinstance(srs, SelectionQuery) and srs.prefer_index_on is None
        assert isinstance(irs, SelectionQuery) and irs.prefer_index_on == "a2"
        assert srs.aggregates[0].label == "avg(a3)"
        assert isinstance(join, JoinQuery)
        assert (join.left_column, join.right_column) == ("a2", "a1")

    def test_expected_join_rows_equals_r_rows(self, micro_workload):
        # Every R row's a2 hits some S primary key, so the join output is |R|.
        assert micro_workload.expected_join_rows() == micro_workload.config.r_rows


class TestSweeps:
    def test_selectivity_sweep_shares_one_dataset(self):
        points = selectivity_sweep(MicroWorkloadConfig(scale=1 / 2000))
        assert [p.selectivity for p in points] == list(SELECTIVITY_POINTS)
        assert len({id(p.workload) for p in points}) == 1

    def test_record_size_sweep_builds_separate_workloads(self):
        points = record_size_sweep(MicroWorkloadConfig(scale=1 / 2000))
        assert [p.record_size for p in points] == list(RECORD_SIZE_POINTS)
        assert len({id(p.workload) for p in points}) == len(points)

    def test_build_database_for_point(self):
        point = record_size_sweep(MicroWorkloadConfig(scale=1 / 4000))[0]
        database = build_database_for_point(point, with_index=True)
        table = database.table("R")
        assert table.layout.record_size == point.record_size
        assert table.index_on("a2") is not None


class TestTPCD:
    def test_build_and_query_suite(self):
        config = TPCDConfig(lineitem_rows=400, orders_rows=40, part_rows=20, supplier_rows=10)
        workload = TPCDWorkload(config)
        database = workload.build()
        assert database.row_count("lineitem") == 400
        assert database.table("lineitem").index_on("l_shipdate") is not None
        queries = workload.queries()
        assert len(queries) == 17 == workload.query_count()
        kinds = {type(q).__name__ for q in queries}
        assert kinds == {"SelectionQuery", "JoinQuery"}

    def test_suite_runs_through_a_session(self):
        config = TPCDConfig(lineitem_rows=300, orders_rows=30, part_rows=15, supplier_rows=8)
        workload = TPCDWorkload(config)
        database = workload.build()
        session = Session(database, SYSTEM_B, os_interference=None)
        result = session.execute_suite(workload.queries()[:4], warmup_runs=0, label="subset")
        assert result.queries_in_unit == 4
        assert result.breakdown.total_cycles > 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TPCDConfig(lineitem_rows=0)


class TestTPCC:
    def make(self) -> TPCCWorkload:
        return TPCCWorkload(TPCCConfig(scale=1 / 100, users=4, seed=7))

    def test_build_sizes_and_indexes(self):
        workload = self.make()
        database = workload.build()
        config = workload.config
        assert database.row_count("customer") == config.customer_rows
        assert database.row_count("stock") == config.stock_rows
        assert database.table("customer").index_on("c_id").unique
        assert database.table("stock").index_on("s_i_id").unique

    def test_transaction_mix_and_users(self):
        workload = self.make()
        transactions = list(workload.transactions(40))
        assert len(transactions) == 40
        kinds = {t.kind for t in transactions}
        assert kinds == {"new_order", "payment"}
        assert {t.user for t in transactions} == set(range(4))
        new_order = next(t for t in transactions if t.kind == "new_order")
        assert sum(isinstance(s, UpdateQuery) for s in new_order.statements) == \
            workload.config.items_per_new_order

    def test_run_measures_transactions(self):
        workload = self.make()
        database = workload.build()
        session = Session(database, oltp_variant(SYSTEM_B), os_interference=None)
        counters, breakdown, metrics, executed = workload.run(
            session, transactions=6, warmup_transactions=2)
        assert executed == 6
        assert counters.get("INST_RETIRED") > 6 * SYSTEM_B.cost("txn_overhead").instructions
        assert breakdown.total_cycles > 0
        assert metrics.cpi > 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TPCCConfig(new_order_fraction=1.5)
        with pytest.raises(ValueError):
            TPCCConfig(users=0)
