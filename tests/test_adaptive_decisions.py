"""Differential + property harness for the PR 5 runtime decisions:
adaptive join-side selection and adaptive batch sizing.

Contracts pinned here (extending ``tests/test_adaptive.py``, which owns the
PR 4 conjunct-reordering contracts):

* ``adaptivity="off"`` stays *bit-identical* to the engine without the knob
  on **join plans** too -- same rows, same cache/TLB/branch/event counts,
  same routine invocations -- across layouts, charge modes and worker
  counts (the differential harness extended to joins, as the PR 5
  acceptance criteria require).
* A flipped hash join returns rows identical to the static plan **in the
  same order and with the same dict-merge column order**, for seeded random
  tables with duplicate keys on both sides.
* Both decisions are charge-mode independent (span vs per-address produce
  identical cycles -- the L1D pressure signal and the cardinality evidence
  are count-identical by the span-charging contract) and compose with
  morsel parallelism (identical rows for every worker count, deterministic
  counts for a fixed partitioning).
* The payoff is real: greedy flips the planner-wrong join and spends fewer
  cycles than the static control arm; greedy grows a too-small vector and
  spends fewer cycles than the fixed-size control arm.
"""

from __future__ import annotations

import random

import pytest

from repro.adaptive import (AdaptiveExecution, GreedyRankPolicy,
                            RuntimeStatsCollector, StaticPolicy,
                            greedy_batch_size, greedy_flip_join)
from repro.engine import Database, Session
from repro.execution import ExecutionContext, execute_plan
from repro.hardware import SimulatedProcessor
from repro.query import ExecutionConfig, JoinQuery, Planner, avg, count_star
from repro.query.plans import HashJoinPlan, SeqScanPlan
from repro.storage.schema import ColumnType
from repro.systems import SYSTEM_B
from repro.workloads.micro import MicroWorkload, MicroWorkloadConfig

R_ROWS = 420
S_ROWS = 40
KEY_DOMAIN = 25  # small domain -> duplicate join keys on both sides


def build_database(layout_style: str = "nsm", seed: int = 42) -> Database:
    """Seeded random R and S with duplicate keys on both join sides."""
    db = Database()
    columns = [("a1", ColumnType.INT32), ("a2", ColumnType.INT32),
               ("a3", ColumnType.INT32)]
    db.create_table("R", columns, record_size=100, layout_style=layout_style)
    db.create_table("S", columns, record_size=100, layout_style=layout_style)
    rng = random.Random(seed)
    db.load("R", [(i + 1, rng.randint(1, KEY_DOMAIN), rng.randint(0, 9_999))
                  for i in range(R_ROWS)])
    db.load("S", [(rng.randint(1, KEY_DOMAIN), rng.randint(1, KEY_DOMAIN),
                   rng.randint(0, 9_999)) for i in range(S_ROWS)])
    return db


#: The planner-wrong join: build pinned to R, the ~10x larger input.
WRONG_SIDE_JOIN = JoinQuery(left_table="R", right_table="S",
                            left_column="a2", right_column="a1",
                            aggregates=(avg("R.a3"), count_star()),
                            build_side="left")


def hardware_counts(processor) -> dict:
    snap = processor.caches.snapshot()
    return {
        "l1d": snap.l1d, "l1i": snap.l1i, "l2": snap.l2,
        "dtlb": processor.dtlb.stats.as_dict(),
        "itlb": processor.itlb.stats.as_dict(),
        "branch": processor.branch_unit.stats.as_dict(),
        "user": dict(processor.counters.user),
        "sup": dict(processor.counters.sup),
    }


def run_query(query, adaptivity=None, layout="nsm", workers=1,
              charge_mode="span", batch_size=64, seed=42, warmup_runs=0,
              **session_kwargs):
    """Execute one query; return (rows, hardware counts, invocations, session
    collector snapshot)."""
    db = build_database(layout_style=layout, seed=seed)
    kwargs = dict(session_kwargs)
    if adaptivity is not None:
        kwargs["adaptivity"] = adaptivity
    session = Session(db, SYSTEM_B, os_interference=None, engine="vectorized",
                      batch_size=batch_size, charge_mode=charge_mode,
                      parallelism=workers, parallel_backend="inline",
                      morsel_pages=1 if workers > 1 else None, **kwargs)
    result = session.execute(query, warmup_runs=warmup_runs)
    session.processor.finalize()
    counts = hardware_counts(session.processor)
    invocations = dict(session.context.op_invocations)
    collector = (session.adaptive.collector.snapshot()
                 if session.adaptive is not None else None)
    session.close()
    return result.rows, counts, invocations, collector


# ---------------------------------------------------------------------------
# adaptivity="off" stays bit-identical on join plans
# ---------------------------------------------------------------------------
JOIN_QUERIES = {
    "planner_join": lambda: JoinQuery(left_table="R", right_table="S",
                                      left_column="a2", right_column="a1",
                                      aggregates=(avg("R.a3"), count_star())),
    "wrong_side_join": lambda: WRONG_SIDE_JOIN,
}


@pytest.mark.parametrize("layout", ("nsm", "pax"))
@pytest.mark.parametrize("shape", sorted(JOIN_QUERIES))
def test_off_identical_to_unconfigured_engine_on_joins(shape, layout):
    query = JOIN_QUERIES[shape]()
    baseline = run_query(query, adaptivity=None, layout=layout)
    off = run_query(query, adaptivity="off", layout=layout)
    assert off[:3] == baseline[:3]


@pytest.mark.parametrize("charge_mode", ("span", "per_address"))
@pytest.mark.parametrize("workers", (1, 3))
def test_off_join_identical_across_workers_and_charge_modes(workers,
                                                            charge_mode):
    query = WRONG_SIDE_JOIN
    baseline = run_query(query, adaptivity=None, charge_mode=charge_mode)
    off = run_query(query, adaptivity="off", workers=workers,
                    charge_mode=charge_mode)
    assert off[:3] == baseline[:3]


def test_off_scan_identical_with_configured_batch_size():
    """A small configured vector is page-capped on the legacy path; 'off'
    must reproduce it exactly (the ABS anchor cell's contract)."""
    workload_query = JOIN_QUERIES["planner_join"]()
    for size in (7, 32):
        baseline = run_query(workload_query, adaptivity=None, batch_size=size)
        off = run_query(workload_query, adaptivity="off", batch_size=size)
        assert off[:3] == baseline[:3]


# ---------------------------------------------------------------------------
# Configuration contract
# ---------------------------------------------------------------------------
def test_decision_switches_require_non_off_adaptivity():
    with pytest.raises(ValueError):
        ExecutionConfig(engine="vectorized", adaptive_joins=True)
    with pytest.raises(ValueError):
        ExecutionConfig(engine="vectorized", adaptive_batching=True)
    db = build_database()
    with pytest.raises(ValueError):
        Session(db, SYSTEM_B, os_interference=None, engine="vectorized",
                adaptive_joins=True)
    # Any non-off mode accepts the switches ('static' is the control arm).
    config = ExecutionConfig(engine="vectorized", adaptivity="static",
                             adaptive_joins=True, adaptive_batching=True)
    assert config.adaptive_joins and config.adaptive_batching


def test_join_query_validates_build_side():
    with pytest.raises(ValueError):
        JoinQuery(left_table="R", right_table="S", left_column="a2",
                  right_column="a1", aggregates=(count_star(),),
                  build_side="middle")


def test_planner_honours_build_side_hint():
    db = build_database()
    plan = Planner(db.catalog, SYSTEM_B).plan(WRONG_SIDE_JOIN)
    join = plan.input
    assert isinstance(join, HashJoinPlan)
    assert isinstance(join.build, SeqScanPlan) and join.build.table == "R"
    assert join.probe.table == "S"
    # Without the hint the planner builds on the smaller S.
    neutral = Planner(db.catalog, SYSTEM_B).plan(JOIN_QUERIES["planner_join"]())
    assert neutral.input.build.table == "S"


# ---------------------------------------------------------------------------
# Flip correctness: identical rows, identical order, identical columns
# ---------------------------------------------------------------------------
def bare_join_rows(layout, seed, manager=None):
    """Execute the bare (non-aggregated) wrong-side hash join plan and
    return the materialized row dicts in output order."""
    db = build_database(layout_style=layout, seed=seed)
    plan = Planner(db.catalog, SYSTEM_B).plan(WRONG_SIDE_JOIN).input
    ctx = ExecutionContext(SimulatedProcessor(), SYSTEM_B, db.address_space)
    if manager is not None:
        ctx.adaptive = manager
    return execute_plan(plan, db.catalog, ctx,
                        execution=ExecutionConfig(engine="vectorized",
                                                  batch_size=64,
                                                  adaptivity="greedy" if manager else "off"))


@pytest.mark.parametrize("layout", ("nsm", "pax"))
@pytest.mark.parametrize("seed", (42, 7, 1999))
def test_flipped_join_rows_order_and_columns_identical(layout, seed):
    static_rows = bare_join_rows(layout, seed)
    manager = AdaptiveExecution("greedy", join_sides=True)
    flipped_rows = bare_join_rows(layout, seed, manager=manager)
    # The greedy policy really flipped (R streamed through the S-side table
    # after the observed build cardinality contradicted the probe estimate).
    assert manager.collector.cardinality("card:R") == R_ROWS
    assert manager.collector.cardinality("card:S") == S_ROWS
    assert flipped_rows == static_rows
    # Column order (dict-merge semantics) is part of the contract.
    assert [tuple(row) for row in flipped_rows] == [tuple(row)
                                                    for row in static_rows]


def test_static_policy_never_flips_and_matches_off_charges():
    query = WRONG_SIDE_JOIN
    off = run_query(query, adaptivity="off")
    static = run_query(query, adaptivity="static", adaptive_joins=True)
    # The unflipped adaptive path charges exactly like the static engine.
    assert static[:3] == off[:3]
    # ... while still observing both input cardinalities.
    collector = RuntimeStatsCollector.from_snapshot(static[3])
    assert collector.cardinality("card:R") == R_ROWS
    assert collector.cardinality("card:S") == S_ROWS


def test_warm_flip_uses_historical_cardinalities():
    """With a warm-up execution observed, greedy flips before ingesting a
    single build batch: no wasted hash-build work at all."""
    cold = run_query(WRONG_SIDE_JOIN, adaptivity="greedy", adaptive_joins=True)
    warm = run_query(WRONG_SIDE_JOIN, adaptivity="greedy", adaptive_joins=True,
                     warmup_runs=1)
    static = run_query(WRONG_SIDE_JOIN, adaptivity="static",
                       adaptive_joins=True, warmup_runs=1)
    assert cold[0] == warm[0] == static[0]
    # The flip converts R-side hash_build batches into hash_probe batches.
    assert warm[2]["hash_build"] < static[2]["hash_build"]
    assert warm[2]["hash_probe"] > static[2]["hash_probe"]


@pytest.mark.parametrize("charge_mode", ("span", "per_address"))
def test_flip_decision_is_charge_mode_independent(charge_mode):
    reference = run_query(WRONG_SIDE_JOIN, adaptivity="greedy",
                          adaptive_joins=True, charge_mode="span")
    other = run_query(WRONG_SIDE_JOIN, adaptivity="greedy",
                      adaptive_joins=True, charge_mode=charge_mode)
    assert other[:3] == reference[:3]


def test_parallel_adaptive_join_matches_serial_rows():
    serial = run_query(WRONG_SIDE_JOIN, adaptivity="greedy",
                       adaptive_joins=True)
    first = run_query(WRONG_SIDE_JOIN, adaptivity="greedy",
                      adaptive_joins=True, workers=3)
    second = run_query(WRONG_SIDE_JOIN, adaptivity="greedy",
                       adaptive_joins=True, workers=3)
    assert first[0] == serial[0]
    assert second == first  # fixed partitioning -> deterministic counts


# ---------------------------------------------------------------------------
# Policy units: the decision rules themselves
# ---------------------------------------------------------------------------
def test_greedy_flip_join_weighs_evidence_against_expectation():
    stats = RuntimeStatsCollector()
    # No evidence: trust the planner.
    assert not greedy_flip_join("card:R", "card:S", 200, 0, stats)
    # Streamed build rows within hysteresis of the probe expectation: hold.
    assert not greedy_flip_join("card:R", "card:S", 200, 250, stats)
    # Evidence beyond hysteresis: flip.
    assert greedy_flip_join("card:R", "card:S", 200, 251, stats)
    # Historical build cardinality flips before any rows stream.
    stats.observe_cardinality("card:R", 6_000)
    assert greedy_flip_join("card:R", "card:S", 200, 0, stats)
    # Observed probe cardinality overrides a stale planner estimate.
    stats.observe_cardinality("card:S", 50_000)
    assert not greedy_flip_join("card:R", "card:S", 200, 6_000, stats)
    # The static policy never flips, whatever the evidence says.
    assert not StaticPolicy().flip_join("card:R", "card:S", 200, 10**9, stats)
    assert StaticPolicy().batch_size("scan:R", 256, stats) == 256


def test_greedy_batch_size_explores_then_settles():
    stats = RuntimeStatsCollector()
    ladder = (32, 64, 128, 256)
    size = 64
    # Flat pressure profile: exploration touches each rung once, then the
    # largest rung wins (it amortises the per-batch invocation hardest).
    for _ in range(12):
        stats.observe_pressure("k", size, rows=size, l1d_misses=size)  # 1/row
        size = greedy_batch_size("k", size, stats, ladder=ladder)
    assert size == 256
    # A rung whose working set thrashes is disqualified permanently.
    stats.observe_pressure("k", 256, rows=256, l1d_misses=2_560)  # 10/row
    assert greedy_batch_size("k", 256, stats, ladder=ladder) == 128
    assert greedy_batch_size("k", 128, stats, ladder=ladder) == 128


def test_collector_merges_cardinalities_and_pressure_commutatively():
    a, b = RuntimeStatsCollector(), RuntimeStatsCollector()
    a.observe_cardinality("card:R", 100)
    b.observe_cardinality("card:R", 300)
    b.observe_cardinality("card:S", 40)
    a.observe_pressure("scan:R", 128, rows=128, l1d_misses=50)
    b.observe_pressure("scan:R", 128, rows=128, l1d_misses=70)
    ab = RuntimeStatsCollector.from_snapshot(a.snapshot()).merge(b)
    ba = RuntimeStatsCollector.from_snapshot(b.snapshot()).merge(a)
    assert ab.snapshot() == ba.snapshot()
    assert ab.cardinality("card:R") == 200.0  # mean of the two executions
    assert ab.pressure_profile("scan:R")[128].l1d_misses == 120
    roundtrip = RuntimeStatsCollector.from_snapshot(ab.snapshot())
    assert roundtrip.snapshot() == ab.snapshot()


# ---------------------------------------------------------------------------
# Batch sizing: identical rows, charge-mode independence, parallel rows
# ---------------------------------------------------------------------------
def scan_query():
    from repro.query import SelectionQuery, range_predicate
    return SelectionQuery(table="R", aggregates=(avg("a3"), count_star()),
                          predicate=range_predicate("a2", 3, 17))


@pytest.mark.parametrize("layout", ("nsm", "pax"))
@pytest.mark.parametrize("size", (1, 7, 64, 1024))
def test_adaptive_batching_rows_identical(layout, size):
    query = scan_query()
    baseline = run_query(query, adaptivity=None, layout=layout,
                         batch_size=size)
    for mode in ("static", "greedy"):
        adaptive = run_query(query, adaptivity=mode, adaptive_batching=True,
                             layout=layout, batch_size=size)
        assert adaptive[0] == baseline[0]


@pytest.mark.parametrize("charge_mode", ("span", "per_address"))
def test_batch_sizing_is_charge_mode_independent(charge_mode):
    reference = run_query(scan_query(), adaptivity="greedy",
                          adaptive_batching=True, batch_size=16,
                          charge_mode="span")
    other = run_query(scan_query(), adaptivity="greedy",
                      adaptive_batching=True, batch_size=16,
                      charge_mode=charge_mode)
    assert other[:3] == reference[:3]


def test_parallel_adaptive_batching_matches_serial_rows():
    query = scan_query()
    serial = run_query(query, adaptivity="greedy", adaptive_batching=True,
                       batch_size=16)
    first = run_query(query, adaptivity="greedy", adaptive_batching=True,
                      batch_size=16, workers=3)
    second = run_query(query, adaptivity="greedy", adaptive_batching=True,
                       batch_size=16, workers=3)
    assert first[0] == serial[0]
    assert second == first
    # The parent observed worker pressure at replay time, per rung.
    collector = RuntimeStatsCollector.from_snapshot(first[3])
    assert sum(stats.rows
               for stats in collector.pressure_profile("scan:R").values()) > 0


def test_batching_composes_with_conjunct_reordering():
    from repro.query import SelectionQuery
    from repro.query.expressions import (ColumnRef, Comparison, ComparisonOp,
                                         Const, conjunction)
    query = SelectionQuery(
        table="R", aggregates=(avg("a3"), count_star()),
        predicate=conjunction(
            Comparison(ComparisonOp.LE, ColumnRef("a1"), Const(400)),
            Comparison(ComparisonOp.GE, ColumnRef("a3"), Const(5_000)),
            Comparison(ComparisonOp.LT, ColumnRef("a2"), Const(3))))
    baseline = run_query(query, adaptivity=None)
    both = run_query(query, adaptivity="greedy", adaptive_batching=True,
                     adaptive_joins=True, batch_size=16)
    assert both[0] == baseline[0]
    collector = RuntimeStatsCollector.from_snapshot(both[3])
    assert collector.total_rows_in() > 0          # conjunct stats observed
    assert collector.pressure_profile("scan:R")   # pressure observed


# ---------------------------------------------------------------------------
# The payoff (engine level, microworkload scale)
# ---------------------------------------------------------------------------
def test_runner_adaptive_cells_measure_both_decisions():
    """The experiments layer's AJS/ABS cells: identical rows per mode,
    greedy cheaper than the static control arm, warmed-build reuse."""
    from repro.experiments import ExperimentConfig, ExperimentRunner

    runner = ExperimentRunner(ExperimentConfig(
        micro=MicroWorkloadConfig(scale=1.0 / 400.0), os_interference=False))
    for layout in ("nsm", "pax"):
        join_static = runner.adaptive_join_cell(layout, "static")
        join_greedy = runner.adaptive_join_cell(layout, "greedy")
        assert join_static.rows == join_greedy.rows
        assert (join_greedy.counters.get("CPU_CLK_UNHALTED")
                < join_static.counters.get("CPU_CLK_UNHALTED"))
        batch_static = runner.adaptive_batch_cell(layout, "static")
        batch_greedy = runner.adaptive_batch_cell(layout, "greedy")
        assert batch_static.rows == batch_greedy.rows
        assert (batch_greedy.counters.get("CPU_CLK_UNHALTED")
                < batch_static.counters.get("CPU_CLK_UNHALTED"))
        # Cells are cached: re-measuring returns the same object.
        assert runner.adaptive_join_cell(layout, "greedy") is join_greedy


def test_greedy_flip_beats_static_on_planner_wrong_join():
    workload = MicroWorkload()  # default scale: R=6000, S=200
    query = workload.skewed_join()
    outcomes = {}
    for mode in ("static", "greedy"):
        db = workload.build()
        session = Session(db, SYSTEM_B, os_interference=None,
                          engine="vectorized", adaptivity=mode,
                          adaptive_joins=True)
        outcomes[mode] = session.execute(query, warmup_runs=1)
        session.close()
    static, greedy = outcomes["static"], outcomes["greedy"]
    assert static.rows == greedy.rows
    assert (greedy.counters.get("CPU_CLK_UNHALTED")
            < static.counters.get("CPU_CLK_UNHALTED"))
    # The flip's locality win: the small S-side hash area stays L1D-resident.
    assert greedy.breakdown.components["TL1D"] < static.breakdown.components["TL1D"]


def test_greedy_ladder_beats_static_on_too_small_vectors():
    workload = MicroWorkload(MicroWorkloadConfig(scale=1.0 / 1000.0,
                                                 minimum_r_rows=1200))
    query = workload.sequential_range_selection(0.5)
    outcomes = {}
    for mode in ("static", "greedy"):
        db = workload.build(include_s=False)
        session = Session(db, SYSTEM_B, os_interference=None,
                          engine="vectorized", batch_size=32,
                          adaptivity=mode, adaptive_batching=True)
        outcomes[mode] = session.execute(query, warmup_runs=0)
        session.close()
    static, greedy = outcomes["static"], outcomes["greedy"]
    assert static.rows == greedy.rows
    assert (greedy.counters.get("CPU_CLK_UNHALTED")
            < static.counters.get("CPU_CLK_UNHALTED"))
