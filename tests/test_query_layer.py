"""Tests for expressions, logical/physical plans and the planner."""

import pytest

from repro.query import (Aggregate, AggregateFunction, AggregateState, And, Between,
                         ColumnRef, Comparison, ComparisonOp, Const, ExpressionError,
                         JoinQuery, Not, Or, Planner, PlannerError, SelectionQuery,
                         UpdateQuery, avg, count_star, describe_plan, equals,
                         extract_range_bounds, range_predicate)
from repro.query.planner import DefaultPolicy
from repro.query.plans import (AggregatePlan, HashJoinPlan, IndexNestedLoopJoinPlan,
                               IndexPointLookupPlan, IndexRangeScanPlan,
                               NestedLoopJoinPlan, SeqScanPlan, UpdatePlan)
from repro.storage import Catalog, microbenchmark_schema
from repro.systems import SYSTEM_A, SYSTEM_B


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
class TestExpressions:
    def test_range_predicate_matches_paper_qualification(self):
        predicate = range_predicate("a2", 10, 20)
        assert predicate.evaluate({"a2": 15}) is True
        assert predicate.evaluate({"a2": 10}) is False      # strict lower bound
        assert predicate.evaluate({"a2": 20}) is False      # strict upper bound
        assert predicate.comparison_count() == 2
        assert predicate.columns() == {"a2"}

    def test_range_predicate_inclusive_bounds(self):
        predicate = range_predicate("a2", 10, 20, include_low=True, include_high=True)
        assert predicate.evaluate({"a2": 10}) and predicate.evaluate({"a2": 20})

    def test_comparisons(self):
        row = {"x": 5}
        assert Comparison(ComparisonOp.LT, ColumnRef("x"), Const(6)).evaluate(row)
        assert Comparison(ComparisonOp.GE, ColumnRef("x"), Const(5)).evaluate(row)
        assert not Comparison(ComparisonOp.NE, ColumnRef("x"), Const(5)).evaluate(row)

    def test_qualified_column_lookup_falls_back_to_short_name(self):
        assert ColumnRef("R.a3").evaluate({"a3": 7}) == 7
        with pytest.raises(ExpressionError):
            ColumnRef("R.a9").evaluate({"a3": 7})

    def test_and_or_not(self):
        t = Comparison(ComparisonOp.GT, ColumnRef("x"), Const(0))
        f = Comparison(ComparisonOp.LT, ColumnRef("x"), Const(0))
        row = {"x": 1}
        assert And((t, t)).evaluate(row)
        assert not And((t, f)).evaluate(row)
        assert Or((f, t)).evaluate(row)
        assert Not(f).evaluate(row)
        assert And((t, f)).comparison_count() == 2

    def test_equals_helper(self):
        assert equals("k", 3).evaluate({"k": 3})


class TestAggregates:
    def test_avg_sum_count_min_max(self):
        values = [1, 2, 3, 4]
        for function, expected in ((AggregateFunction.AVG, 2.5),
                                   (AggregateFunction.SUM, 10.0),
                                   (AggregateFunction.MIN, 1),
                                   (AggregateFunction.MAX, 4)):
            state = AggregateState(Aggregate(function, "x"))
            for value in values:
                state.update(value)
            assert state.result() == expected
        count = AggregateState(count_star())
        for value in values:
            count.update(1)
        assert count.result() == 4

    def test_empty_avg_is_none_and_empty_count_is_zero(self):
        assert AggregateState(avg("x")).result() is None
        assert AggregateState(count_star()).result() == 0

    def test_non_count_aggregate_requires_column(self):
        with pytest.raises(ExpressionError):
            Aggregate(AggregateFunction.AVG, None)

    def test_label(self):
        assert avg("a3").label == "avg(a3)"
        assert count_star().label == "count(*)"


# ---------------------------------------------------------------------------
# Bounds extraction
# ---------------------------------------------------------------------------
class TestRangeBoundExtraction:
    def test_between_extraction(self):
        bounds = extract_range_bounds(range_predicate("a2", 5, 9), "a2")
        assert (bounds.low, bounds.high) == (5, 9)
        assert bounds.include_low is False and bounds.include_high is False

    def test_single_comparison_extraction(self):
        bounds = extract_range_bounds(Comparison(ComparisonOp.LE, ColumnRef("a2"), Const(7)), "a2")
        assert bounds.low is None and bounds.high == 7 and bounds.include_high

    def test_wrong_column_returns_none(self):
        assert extract_range_bounds(range_predicate("a1", 5, 9), "a2") is None

    def test_unsupported_shape_returns_none(self):
        pred = And((range_predicate("a2", 1, 5), equals("a1", 3)))
        assert extract_range_bounds(pred, "a2") is None


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------
def build_catalog(rows=800, with_index=True) -> Catalog:
    catalog = Catalog()
    schema, _ = microbenchmark_schema(100, "R")
    table = catalog.create_table("R", schema, record_size=100)
    table.insert_many((i, i % 100 + 1, i) for i in range(rows))
    schema_s, _ = microbenchmark_schema(100, "S")
    s = catalog.create_table("S", schema_s, record_size=100)
    s.insert_many((i, i, i) for i in range(1, 41))
    if with_index:
        catalog.create_index("R", "a2")
    return catalog


class TestPlanner:
    def selection(self, lo=0, hi=11, prefer_index="a2") -> SelectionQuery:
        return SelectionQuery(table="R", aggregates=(avg("a3"),),
                              predicate=range_predicate("a2", lo, hi),
                              prefer_index_on=prefer_index)

    def test_selective_query_uses_index_when_policy_allows(self):
        planner = Planner(build_catalog(), SYSTEM_B)
        plan = planner.plan(self.selection())
        assert isinstance(plan, AggregatePlan)
        assert isinstance(plan.input, IndexRangeScanPlan)
        assert plan.input.low == 0 and plan.input.high == 11

    def test_system_a_policy_never_uses_index(self):
        planner = Planner(build_catalog(), SYSTEM_A)
        plan = planner.plan(self.selection())
        assert isinstance(plan.input, SeqScanPlan)

    def test_unselective_query_falls_back_to_seq_scan(self):
        planner = Planner(build_catalog(), SYSTEM_B)
        plan = planner.plan(self.selection(lo=0, hi=100))
        assert isinstance(plan.input, SeqScanPlan)

    def test_missing_index_falls_back_to_seq_scan(self):
        planner = Planner(build_catalog(with_index=False), SYSTEM_B)
        plan = planner.plan(self.selection())
        assert isinstance(plan.input, SeqScanPlan)

    def test_no_preference_means_seq_scan(self):
        planner = Planner(build_catalog(), SYSTEM_B)
        plan = planner.plan(self.selection(prefer_index=None))
        assert isinstance(plan.input, SeqScanPlan)

    def test_selectivity_estimate_roughly_uniform(self):
        planner = Planner(build_catalog(), SYSTEM_B)
        bounds = extract_range_bounds(range_predicate("a2", 0, 11), "a2")
        estimate = planner.estimate_selectivity("R", bounds)
        assert 0.02 <= estimate <= 0.2

    def test_hash_join_builds_on_smaller_input(self):
        planner = Planner(build_catalog(), SYSTEM_B)
        query = JoinQuery(left_table="R", right_table="S", left_column="a2",
                          right_column="a1", aggregates=(avg("R.a3"),))
        plan = planner.plan(query)
        assert isinstance(plan.input, HashJoinPlan)
        assert plan.input.build.table == "S"
        assert plan.input.probe.table == "R"

    def test_nested_loop_policy(self):
        policy = DefaultPolicy(join_algorithm="nested_loop")
        planner = Planner(build_catalog(), policy)
        query = JoinQuery(left_table="R", right_table="S", left_column="a2",
                          right_column="a1", aggregates=(avg("R.a3"),))
        plan = planner.plan(query)
        assert isinstance(plan.input, NestedLoopJoinPlan)
        # Smaller relation goes on the inner side.
        assert plan.input.inner.table == "S"

    def test_index_nested_loop_policy_requires_inner_index(self):
        catalog = build_catalog()
        catalog.create_index("S", "a1", unique=True)
        policy = DefaultPolicy(join_algorithm="index_nested_loop")
        planner = Planner(catalog, policy)
        query = JoinQuery(left_table="R", right_table="S", left_column="a2",
                          right_column="a1", aggregates=(avg("R.a3"),))
        plan = planner.plan(query)
        assert isinstance(plan.input, IndexNestedLoopJoinPlan)

    def test_update_plan_requires_index(self):
        catalog = build_catalog(with_index=False)
        planner = Planner(catalog, SYSTEM_B)
        with pytest.raises(PlannerError):
            planner.plan(UpdateQuery(table="R", key_column="a2", key_value=3,
                                     set_column="a3", set_value=0))
        catalog.create_index("R", "a2")
        plan = planner.plan(UpdateQuery(table="R", key_column="a2", key_value=3,
                                        set_column="a3", set_value=0))
        assert isinstance(plan, UpdatePlan)
        assert isinstance(plan.lookup, IndexPointLookupPlan)

    def test_describe_plan_mentions_access_paths(self):
        planner = Planner(build_catalog(), SYSTEM_B)
        text = describe_plan(planner.plan(self.selection()))
        assert "Aggregate" in text and "IndexRangeScan" in text
        query = JoinQuery(left_table="R", right_table="S", left_column="a2",
                          right_column="a1", aggregates=(avg("R.a3"),))
        assert "HashJoin" in describe_plan(planner.plan(query))

    def test_selection_query_requires_aggregates(self):
        with pytest.raises(ValueError):
            SelectionQuery(table="R", aggregates=())
