"""Concurrent query serving: the scheduler, caches and shared scans.

The serving layer's contract has two walls:

* **Rows are always identical to solo execution** — whatever mix of plan
  cache, result cache and shared scans served a query, its rows match a
  fresh solo session against a fresh build.
* **Counts change only where a knob says so** — with every layer off the
  server is bit-identical to back-to-back solo sessions; plan caching and
  shared scans change no simulated count (the planner charges nothing; the
  shared stream replays each attachment's charge tape into its own
  context); only a *result-cache hit* charges differently (the modelled
  cache probe instead of execution), by design.

These tests differentially pin both walls, plus the satellite guarantees:
per-logical-session spill namespaces keep concurrent budgeted joins
count-identical to solo, and updates bump table epochs so stale cached
results can never be served.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.query.plans import UpdateQuery
from repro.serving import PlanCache, ResultCache, Server, normalize_query
from repro.systems import system_by_key
from repro.workloads import (MicroWorkloadConfig, ServingTraceConfig,
                             build_trace, percentile, run_open_loop)

TINY = MicroWorkloadConfig(scale=0.001)


def tiny_runner() -> ExperimentRunner:
    return ExperimentRunner(ExperimentConfig(micro=TINY, os_interference=False))


def make_server(runner, **kwargs):
    return runner.serving_server("nsm", **kwargs)


def solo_results(runner, queries):
    """Reference measurements: one fresh solo session per query."""
    results = []
    for query in queries:
        session = runner.grid_session("vectorized", "nsm")
        results.append(session.execute(query, warmup_runs=0))
    return results


def mixed_queries(workload):
    return [workload.sequential_range_selection(),
            workload.indexed_range_selection(),
            workload.sequential_join(),
            workload.sequential_range_selection(0.5),
            workload.skewed_conjunct_selection(),
            workload.sequential_range_selection()]


# ---------------------------------------------------------------------------
# The count-identity walls
# ---------------------------------------------------------------------------
class TestCountIdentity:
    def test_all_layers_off_is_bit_identical_to_solo(self):
        runner = tiny_runner()
        queries = mixed_queries(runner.micro_workload)
        solo = solo_results(runner, queries)
        server = make_server(runner, max_concurrency=1, plan_cache=False,
                             result_cache=False, shared_scans=False)
        futures = [server.submit(q) for q in queries]
        server.run_until_idle()
        for future, reference in zip(futures, solo):
            assert future.outcome.rows == reference.rows
            assert (future.outcome.result.counters.as_dict()
                    == reference.counters.as_dict())

    def test_rows_identical_with_every_layer_on(self):
        runner = tiny_runner()
        queries = mixed_queries(runner.micro_workload)
        solo = solo_results(runner, queries)
        server = make_server(runner, max_concurrency=8)
        futures = [server.submit(q) for q in queries]
        server.run_until_idle()
        for future, reference in zip(futures, solo):
            assert future.outcome.rows == reference.rows

    def test_plan_cache_and_shared_scans_change_no_counts(self):
        """With the result cache off, every query executes — and its counts
        must match solo even when it rode a cached plan or a shared scan."""
        runner = tiny_runner()
        workload = runner.micro_workload
        queries = [workload.sequential_range_selection(),
                   workload.sequential_range_selection(),
                   workload.sequential_range_selection(),
                   workload.sequential_join()]
        solo = solo_results(runner, queries)
        server = make_server(runner, max_concurrency=8, result_cache=False)
        futures = [server.submit(q) for q in queries]
        server.run_until_idle()
        assert server.stats.plan_cache_hits == 2
        assert server.stats.shared_scan_reuses == 2
        assert any(f.outcome.shared_scan for f in futures)
        for future, reference in zip(futures, solo):
            assert future.outcome.rows == reference.rows
            assert (future.outcome.result.counters.as_dict()
                    == reference.counters.as_dict())

    def test_result_cache_hit_charges_probe_not_execution(self):
        runner = tiny_runner()
        query = runner.micro_workload.sequential_range_selection()
        server = make_server(runner, max_concurrency=8)
        first = server.submit(query)
        second = server.submit(query)
        server.run_until_idle()
        assert not first.outcome.result_cached
        assert second.outcome.result_cached
        assert second.outcome.rows == first.outcome.rows
        assert 0 < second.outcome.cycles < first.outcome.cycles
        assert second.outcome.result.plan_description.startswith(
            "ResultCache hit")

    def test_hit_counts_deterministic_across_servers(self):
        """The memoized probe charge must equal a fresh simulation."""
        runner = tiny_runner()
        query = runner.micro_workload.sequential_range_selection()
        hits = []
        for _ in range(2):
            server = make_server(runner, max_concurrency=4)
            server.submit(query)
            future = server.submit(query)
            repeat = server.submit(query)
            server.run_until_idle()
            assert future.outcome.result_cached
            assert (repeat.outcome.result.counters.as_dict()
                    == future.outcome.result.counters.as_dict())
            hits.append(future.outcome.result.counters.as_dict())
        assert hits[0] == hits[1]


# ---------------------------------------------------------------------------
# Spill namespaces (satellite: per-session backing-store isolation)
# ---------------------------------------------------------------------------
class TestSpillNamespaces:
    def test_budgeted_joins_count_identical_under_serving(self):
        runner = tiny_runner()
        workload = runner.micro_workload
        budget = max(runner.config.micro.s_bytes // 2, 1)
        solo = runner.grid_session(
            "vectorized", "nsm", memory_budget_bytes=budget).execute(
            workload.over_budget_join(), warmup_runs=0)
        assert solo.rows  # the join actually produced something
        server = make_server(runner, max_concurrency=4, result_cache=False,
                             memory_budget_bytes=budget)
        futures = [server.submit(workload.over_budget_join())
                   for _ in range(4)]
        server.run_until_idle()
        for future in futures:
            assert future.outcome.rows == solo.rows
            assert (future.outcome.result.counters.as_dict()
                    == solo.counters.as_dict())

    def test_sessions_get_disjoint_backing_regions(self):
        runner = tiny_runner()
        database, _ = runner.grid_database("nsm")
        server = make_server(runner, max_concurrency=3)
        seen = set()
        for index in range(3):
            session = server._session(index)
            namespace = session.context.disk_namespace
            assert namespace == f"disk.s{index % 3}"
            region = database.address_space.ensure_region(namespace)
            assert region.cursor == 0
            seen.add((region.base, region.base + region.size))
        assert len(seen) == 3
        spans = sorted(seen)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start  # disjoint address ranges


# ---------------------------------------------------------------------------
# Cache keying and invalidation
# ---------------------------------------------------------------------------
class TestCaches:
    def test_normalize_strips_labels_but_not_constants(self):
        workload = tiny_runner().micro_workload
        a = workload.sequential_range_selection()
        b = workload.sequential_range_selection()
        wider = workload.sequential_range_selection(0.5)
        assert normalize_query(a) == normalize_query(b)
        assert normalize_query(a) != normalize_query(wider)

    def test_result_cache_copies_rows_both_ways(self):
        cache = ResultCache()
        rows = [{"avg(a3)": 1.0}]
        cache.put(("k",), rows, "plan")
        rows[0]["avg(a3)"] = 99.0  # caller mutates after put
        entry = cache.get(("k",))
        assert entry.rows == [{"avg(a3)": 1.0}]
        entry.rows[0]["avg(a3)"] = 77.0  # caller mutates the returned copy
        assert cache.get(("k",)).rows == [{"avg(a3)": 1.0}]

    def test_update_invalidates_and_new_results_are_visible(self):
        runner = tiny_runner()  # dedicated runner: the update mutates R
        workload = runner.micro_workload
        query = workload.sequential_range_selection()
        update = UpdateQuery(table="R", key_column="a2", key_value=1,
                             set_column="a3", set_value=10_000_000,
                             label="UPD")
        server = make_server(runner, max_concurrency=8)
        before = server.submit(query)
        cached = server.submit(query)
        server.run_until_idle()
        assert cached.outcome.result_cached
        updated = server.submit(update)
        server.run_until_idle()
        assert updated.outcome.rows[0]["updated"] > 0
        after = server.submit(query)
        server.run_until_idle()
        assert not after.outcome.result_cached
        assert after.outcome.rows != before.outcome.rows
        recached = server.submit(query)
        server.run_until_idle()
        assert recached.outcome.result_cached
        assert recached.outcome.rows == after.outcome.rows
        assert server.stats.updates == 1
        assert server.stats.epochs["R"] == 1

    def test_mid_round_update_does_not_replay_stale_recordings(self):
        """select + update + select admitted into ONE round: the second
        select must re-record from live data, not replay the pre-update
        shared-scan recording — and the entry it caches under the new
        epoch must hold the post-update rows."""
        runner = tiny_runner()  # dedicated runner: the update mutates R
        workload = runner.micro_workload
        query = workload.sequential_range_selection()
        update = UpdateQuery(table="R", key_column="a2", key_value=1,
                             set_column="a3", set_value=10_000_000,
                             label="UPD")
        server = make_server(runner, max_concurrency=8)
        before = server.submit(query)
        updated = server.submit(update)
        after = server.submit(query)
        served, _ = server.step()  # one admission round serves all three
        assert len(served) == 3
        assert updated.outcome.rows[0]["updated"] > 0
        # The post-update select executed (no stale cache entry) and its
        # scan re-recorded instead of riding the pre-update stream.
        assert not after.outcome.result_cached
        assert server.stats.shared_scan_recordings == 2
        assert server.stats.shared_scan_reuses == 0
        assert after.outcome.rows != before.outcome.rows
        # Rows must equal a solo session against the (now updated) build.
        reference = runner.grid_session("vectorized", "nsm").execute(
            query, warmup_runs=0)
        assert after.outcome.rows == reference.rows
        # The new-epoch cache entry was fed post-update rows, not stale ones.
        recached = server.submit(query)
        server.run_until_idle()
        assert recached.outcome.result_cached
        assert recached.outcome.rows == reference.rows

    def test_plan_cache_counts_hits_and_misses(self):
        cache = PlanCache()
        assert cache.get(("a",)) is None
        cache.put(("a",), "plan")
        assert cache.get(("a",)) == "plan"
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_plan_cache_invalidate_table_reclaims_entries(self):
        cache = PlanCache()
        cache.put(("r",), "plan-r", tables=("R",))
        cache.put(("s",), "plan-s", tables=("S",))
        assert cache.invalidate_table("R") == 1
        assert len(cache) == 1
        assert cache.get(("r",)) is None
        assert cache.get(("s",)) == "plan-s"

    def test_invalidate_table_matches_tables_exactly(self):
        """A table named like a *column* in another entry's normalized key
        must not be swept — matching is on the stored table tuple."""
        cache = ResultCache()
        select_key = (("select", "R", (), "pred", None), (0,))
        # A join whose join columns are both literally named "R".
        join_key = (("join", "L", "S", "R", "R", (), "pred", None), (0, 0))
        cache.put(select_key, [], "plan", tables=("R",))
        cache.put(join_key, [], "plan", tables=("L", "S"))
        assert cache.invalidate_table("R") == 1
        assert len(cache) == 1
        assert cache.get(join_key) is not None


# ---------------------------------------------------------------------------
# The open-loop driver
# ---------------------------------------------------------------------------
class TestOpenLoopDriver:
    def test_trace_is_deterministic(self):
        workload = tiny_runner().micro_workload
        config = ServingTraceConfig(queries=16, seed=7)
        first = build_trace(workload, config)
        second = build_trace(workload, config)
        assert [(t.arrival_seconds, t.class_key) for t in first] \
            == [(t.arrival_seconds, t.class_key) for t in second]
        different = build_trace(workload, ServingTraceConfig(queries=16,
                                                             seed=8))
        assert [(t.arrival_seconds, t.class_key) for t in first] \
            != [(t.arrival_seconds, t.class_key) for t in different]

    def test_percentile_is_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 0.50) == 3.0
        assert percentile(values, 0.99) == 5.0
        assert percentile(values, 0.20) == 1.0
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_open_loop_cycles_independent_of_wall_timing(self):
        """Total simulated cycles must not depend on how wall-clock noise
        shapes the admission rounds: two runs of the same trace agree."""
        runner = tiny_runner()
        trace = build_trace(runner.micro_workload,
                            ServingTraceConfig(queries=12))
        reports = []
        for _ in range(2):
            server = make_server(runner, max_concurrency=4)
            reports.append(run_open_loop(server, trace))
        assert reports[0].total_cycles == reports[1].total_cycles
        assert reports[0].total_rows == reports[1].total_rows
        assert reports[0].queries == 12
        assert reports[0].latency_p50 <= reports[0].latency_p95 \
            <= reports[0].latency_p99

    def test_serving_total_cycles_match_serial_when_layers_off(self):
        runner = tiny_runner()
        trace = build_trace(runner.micro_workload,
                            ServingTraceConfig(queries=10))
        serial = make_server(runner, max_concurrency=1, plan_cache=False,
                             result_cache=False, shared_scans=False)
        serial_report = run_open_loop(serial, trace)
        concurrent = make_server(runner, max_concurrency=4, plan_cache=False,
                                 result_cache=False, shared_scans=False)
        concurrent_report = run_open_loop(concurrent, trace)
        assert serial_report.total_cycles == concurrent_report.total_cycles
        assert serial_report.total_rows == concurrent_report.total_rows


# ---------------------------------------------------------------------------
# Serving telemetry: queue depth, per-round log, per-class stats, tracing
# ---------------------------------------------------------------------------
class TestServingTelemetry:
    def test_queue_depth_high_water_and_series(self):
        runner = tiny_runner()
        server = make_server(runner, max_concurrency=2)
        queries = mixed_queries(runner.micro_workload)
        for query in queries:
            server.submit(query)
        assert server.stats.queue_depth_high_water == len(queries)
        server.run_until_idle()
        stats = server.stats.as_dict()
        assert stats["queue_depth_high_water"] == len(queries)
        # One series sample per round, round indices consecutive from 0.
        assert [entry[0] for entry in stats["queue_depth_series"]] \
            == list(range(server.stats.rounds))
        assert stats["queue_depth_series"][0][1] == len(queries)
        rounds_log = stats["rounds_log"]
        assert len(rounds_log) == server.stats.rounds
        assert sum(entry["admitted"] for entry in rounds_log) == len(queries)
        assert all(entry["service_seconds"] >= 0 for entry in rounds_log)

    def test_per_class_stats_partition_the_totals(self):
        runner = tiny_runner()
        server = make_server(runner, max_concurrency=4)
        trace = build_trace(runner.micro_workload,
                            ServingTraceConfig(queries=16, seed=11))
        report = run_open_loop(server, trace)
        classes = server.stats.classes
        assert sum(cls.completed for cls in classes.values()) == 16
        assert (sum(cls.result_cache_hits for cls in classes.values())
                == server.stats.result_cache_hits)
        for class_key, cls in classes.items():
            assert len(cls.service_seconds) == cls.completed
            assert 0.0 <= cls.cache_hit_ratio <= 1.0
            exported = cls.as_dict()
            assert exported["result_cache_misses"] \
                == cls.completed - cls.result_cache_hits
            assert exported["service_p50"] <= exported["service_p99"]
        # The report mirrors the same partition, with latency percentiles.
        assert sum(cell["queries"] for cell in report.classes.values()) == 16
        for cell in report.classes.values():
            assert cell["latency_p50"] <= cell["latency_p95"] \
                <= cell["latency_p99"]
            assert cell["completed"] == cell["queries"]

    def test_result_cache_hit_gets_probe_trace_leaf(self):
        runner = tiny_runner()
        workload = runner.micro_workload
        query = workload.sequential_range_selection()
        server = make_server(runner, max_concurrency=2, tracing="spans")
        miss = server.submit(query)
        hit = server.submit(query)
        server.run_until_idle()
        assert not miss.outcome.result_cached
        assert hit.outcome.result_cached
        trace = hit.outcome.result.trace
        assert trace is not None and trace.name == "result_cache_probe"
        # The leaf carries exactly the probe's charged counters.
        assert (trace.inclusive_counters(None).as_dict()
                == hit.outcome.result.counters.as_dict())
        # Executed queries carry a full trace tree.
        assert miss.outcome.result.trace is not None
        assert miss.outcome.result.trace.children

    def test_untraced_server_attaches_no_traces(self):
        runner = tiny_runner()
        server = make_server(runner, max_concurrency=2)
        query = runner.micro_workload.sequential_range_selection()
        future = server.submit(query)
        server.run_until_idle()
        assert future.outcome.result.trace is None

    def test_traced_server_counts_identical_to_untraced(self):
        runner = tiny_runner()
        config = ServingTraceConfig(queries=10, seed=5)
        plain = run_open_loop(make_server(runner, max_concurrency=4),
                              build_trace(runner.micro_workload, config))
        traced = run_open_loop(
            make_server(runner, max_concurrency=4, tracing="full"),
            build_trace(runner.micro_workload, config))
        assert plain.counters.as_dict() == traced.counters.as_dict()
        assert plain.total_rows == traced.total_rows

    def test_invalid_tracing_mode_rejected(self):
        runner = tiny_runner()
        with pytest.raises(ValueError):
            make_server(runner, tracing="everything")


# ---------------------------------------------------------------------------
# Throughput acceptance (slow: full mixed trace, serial vs concurrency 8)
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestThroughputAcceptance:
    def test_serving_at_least_2x_serial_throughput(self):
        runner = tiny_runner()
        trace = build_trace(runner.micro_workload,
                            ServingTraceConfig(queries=48))
        serial = make_server(runner, max_concurrency=1, plan_cache=False,
                             result_cache=False, shared_scans=False)
        serial_report = run_open_loop(serial, trace)
        serving = make_server(runner, max_concurrency=8)
        serving_report = run_open_loop(serving, trace)
        ratio = (serving_report.throughput_qps
                 / serial_report.throughput_qps)
        assert ratio >= 2.0, f"serving only {ratio:.2f}x serial"
        assert serving_report.total_rows == serial_report.total_rows
