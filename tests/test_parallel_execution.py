"""Differential harness for the morsel-parallel execution subsystem.

``workers=N`` (N > 1) must be *indistinguishable* from the serial engine:
identical result rows, identical cache/TLB/branch/event counts and identical
cycle totals, on every planner-producible plan shape, both page layouts and
both charge modes -- because the exchange operator's charge tapes are
replayed into the real context in canonical morsel order, the partitioning
(and any racing between pool workers) cannot influence a single simulated
event.  The hypothesis section drives arbitrary morsel partitionings
(single-page morsels, one giant morsel, empty tables, batch size 1) at the
same contract, and checks that the worker-mergeable statistics types are
commutative under ``merge()``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database, Session
from repro.execution.parallel import (ParallelExecution, TapeRecorder,
                                      VecExchangeOperator, fork_available,
                                      partition_pages)
from repro.execution.vectorized import VecSeqScanOperator
from repro.hardware import SimulatedProcessor
from repro.hardware.branch import BranchStats
from repro.hardware.cache import CacheStats
from repro.hardware.counters import EventCounters
from repro.hardware.tlb import TLBStats
from repro.query import (JoinQuery, Planner, SelectionQuery, UpdateQuery, avg,
                         count_star, range_predicate)
from repro.query.planner import DefaultPolicy
from repro.storage.schema import ColumnType
from repro.systems import SYSTEM_B, SYSTEM_C

R_ROWS = 420
S_ROWS = 40
A2_DOMAIN = 60

JOIN_QUERY = JoinQuery(left_table="R", right_table="S", left_column="a2",
                       right_column="a1", aggregates=(avg("R.a3"), count_star()))

#: Planner-producible plan shapes, as logical queries plus the planner that
#: lowers them (the exchange engages on the sequential scans inside).
PLAN_SHAPES = {
    "agg_seq_scan": lambda: (SelectionQuery(
        table="R", aggregates=(avg("a3"), count_star()),
        predicate=range_predicate("a2", 5, 25)), SYSTEM_C),
    "agg_seq_scan_wide": lambda: (SelectionQuery(
        table="R", aggregates=(count_star(),),
        predicate=range_predicate("a2", 1, 50)), SYSTEM_C),
    "agg_index_range": lambda: (SelectionQuery(
        table="R", aggregates=(avg("a3"),),
        predicate=range_predicate("a2", 10, 20), prefer_index_on="a2"), SYSTEM_B),
    "hash_join": lambda: (JOIN_QUERY, DefaultPolicy(join_algorithm="hash")),
    "nested_loop_join": lambda: (JOIN_QUERY,
                                 DefaultPolicy(join_algorithm="nested_loop")),
    "index_nested_loop_join": lambda: (JOIN_QUERY,
                                       DefaultPolicy(join_algorithm="index_nested_loop")),
    "update": lambda: (UpdateQuery(table="S", key_column="a1", key_value=11,
                                   set_column="a3", set_value=-5), SYSTEM_B),
}


def build_database(layout_style: str = "nsm", seed: int = 42,
                   r_rows: int = R_ROWS) -> Database:
    db = Database()
    columns = [("a1", ColumnType.INT32), ("a2", ColumnType.INT32),
               ("a3", ColumnType.INT32)]
    db.create_table("R", columns, record_size=100, layout_style=layout_style)
    db.create_table("S", columns, record_size=100, layout_style=layout_style)
    rng = random.Random(seed)
    db.load("R", [(i + 1, rng.randint(1, A2_DOMAIN), rng.randint(0, 9_999))
                  for i in range(r_rows)])
    db.load("S", [(i + 1, rng.randint(1, A2_DOMAIN), rng.randint(0, 9_999))
                  for i in range(S_ROWS)])
    db.create_index("R", "a2")
    db.create_index("S", "a1", unique=True)
    return db


def hardware_counts(processor: SimulatedProcessor) -> dict:
    snap = processor.caches.snapshot()
    return {
        "l1d": snap.l1d, "l1i": snap.l1i, "l2": snap.l2,
        "dtlb": processor.dtlb.stats.as_dict(),
        "itlb": processor.itlb.stats.as_dict(),
        "branch": processor.branch_unit.stats.as_dict(),
        "user": dict(processor.counters.user),
        "sup": dict(processor.counters.sup),
    }


def run_shape(shape: str, parallelism: int, layout: str = "nsm",
              charge_mode: str = "span", backend: str = "inline",
              morsel_pages=None, batch_size: int = 64):
    query, policy = PLAN_SHAPES[shape]()
    profile = policy if hasattr(policy, "key") else SYSTEM_B
    db = build_database(layout_style=layout)
    session = Session(db, profile if hasattr(policy, "key") else SYSTEM_B,
                      os_interference=None, engine="vectorized",
                      batch_size=batch_size, charge_mode=charge_mode,
                      parallelism=parallelism, parallel_backend=backend,
                      morsel_pages=morsel_pages)
    if not hasattr(policy, "key"):
        session.planner.policy = policy
    result = session.execute(query, warmup_runs=0)
    session.processor.finalize()
    counts = hardware_counts(session.processor)
    invocations = dict(session.context.op_invocations)
    session.close()
    return result.rows, counts, invocations


@pytest.mark.parametrize("layout", ("nsm", "pax"))
@pytest.mark.parametrize("shape", sorted(PLAN_SHAPES))
def test_workers_identical_to_serial_every_plan_shape(shape, layout):
    serial = run_shape(shape, 1, layout=layout)
    for workers in (2, 3):
        parallel = run_shape(shape, workers, layout=layout, morsel_pages=1)
        assert parallel[0] == serial[0], "rows diverged"
        assert parallel[1] == serial[1], "hardware counts diverged"
        assert parallel[2] == serial[2], "routine invocations diverged"


@pytest.mark.parametrize("charge_mode", ("span", "per_address"))
def test_workers_identical_under_both_charge_modes(charge_mode):
    serial = run_shape("agg_seq_scan", 1, charge_mode=charge_mode)
    parallel = run_shape("agg_seq_scan", 3, charge_mode=charge_mode,
                         morsel_pages=2)
    assert parallel[:2] == serial[:2]


@pytest.mark.parametrize("batch_size", (1, 7))
def test_workers_identical_at_odd_batch_sizes(batch_size):
    serial = run_shape("hash_join", 1, batch_size=batch_size)
    parallel = run_shape("hash_join", 2, batch_size=batch_size, morsel_pages=1)
    assert parallel[:2] == serial[:2]


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_process_backend_identical_to_serial():
    serial = run_shape("hash_join", 1)
    parallel = run_shape("hash_join", 3, backend="process", morsel_pages=2)
    assert parallel[0] == serial[0]
    assert parallel[1] == serial[1]


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_process_backend_sees_updates_between_queries():
    """An update invalidates the forked snapshot; the next exchange re-forks."""
    db = build_database()
    with Session(db, SYSTEM_B, os_interference=None, engine="vectorized",
                 parallelism=2, parallel_backend="process",
                 morsel_pages=2) as session:
        query = SelectionQuery(table="S", aggregates=(avg("a3"), count_star()))
        before = session.execute(query, warmup_runs=0).rows
        session.execute(UpdateQuery(table="S", key_column="a1", key_value=1,
                                    set_column="a3", set_value=123_456),
                        warmup_runs=0)
        after = session.execute(query, warmup_runs=0).rows
    assert before != after
    # The post-update average must reflect the new value, i.e. workers did
    # not serve the stale pre-update snapshot.
    expected = build_database()
    rows = [expected.table("S").heap.read_values(e.rid)
            for e in expected.table("S").heap.scan()]
    values = [(123_456 if a1 == 1 else a3) for a1, _a2, a3 in rows]
    assert after[0]["avg(a3)"] == pytest.approx(sum(values) / len(values))


def test_workers_one_uses_plain_scan_operator():
    """``workers=1`` must not route through the exchange at all."""
    db = build_database()
    session = Session(db, SYSTEM_B, os_interference=None, engine="vectorized",
                      parallelism=1)
    assert session.context.parallel is None
    from repro.execution.vectorized import build_vectorized_scan
    from repro.query.plans import SeqScanPlan
    operator = build_vectorized_scan(SeqScanPlan(table="R", predicate=None),
                                     db.catalog, session.context)
    assert isinstance(operator, VecSeqScanOperator)
    session.close()


def test_exchange_on_empty_table_yields_nothing():
    db = Database()
    db.create_table("E", [("a1", ColumnType.INT32)])
    parallel = ParallelExecution(db, 2, backend="inline")
    from repro.execution.context import ExecutionContext
    from repro.storage.address_space import AddressSpace
    ctx = ExecutionContext(SimulatedProcessor(), SYSTEM_B, db.address_space)
    exchange = VecExchangeOperator(db.table("E"), ctx, parallel,
                                   output_columns=("a1",))
    assert list(exchange.batches()) == []
    parallel.close()


def test_partition_pages_covers_and_orders():
    assert partition_pages(0, 3) == []
    assert partition_pages(7, 3) == [(0, 3), (3, 6), (6, 7)]
    assert partition_pages(4, 100) == [(0, 4)]
    spans = partition_pages(23, 1)
    assert spans == [(i, i + 1) for i in range(23)]


# ---------------------------------------------------------------------------
# Hypothesis: arbitrary morsel partitionings are count-identical to serial
# ---------------------------------------------------------------------------
_SERIAL_CACHE = {}


def _serial_reference(layout, charge_mode):
    key = (layout, charge_mode)
    if key not in _SERIAL_CACHE:
        _SERIAL_CACHE[key] = run_shape("agg_seq_scan", 1, layout=layout,
                                       charge_mode=charge_mode)
    return _SERIAL_CACHE[key]


@settings(max_examples=12, deadline=None)
@given(morsel_pages=st.integers(min_value=1, max_value=64),
       workers=st.integers(min_value=2, max_value=5),
       layout=st.sampled_from(("nsm", "pax")),
       charge_mode=st.sampled_from(("span", "per_address")))
def test_any_morsel_partitioning_matches_serial(morsel_pages, workers, layout,
                                                charge_mode):
    serial = _serial_reference(layout, charge_mode)
    parallel = run_shape("agg_seq_scan", workers, layout=layout,
                         charge_mode=charge_mode, morsel_pages=morsel_pages)
    assert parallel[0] == serial[0]
    assert parallel[1] == serial[1]
    assert parallel[2] == serial[2]


# ---------------------------------------------------------------------------
# Commutative merges of worker-local statistics
# ---------------------------------------------------------------------------
counts = st.integers(min_value=0, max_value=10_000)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(counts, counts, counts, counts, counts),
                min_size=1, max_size=6),
       st.randoms())
def test_branch_and_tlb_stats_merge_commutes(parts, rnd):
    branch_parts = [BranchStats(branches=a, taken=b, mispredictions=c,
                                btb_hits=d, btb_misses=e)
                    for a, b, c, d, e in parts]
    tlb_parts = [TLBStats(accesses=a, misses=b) for a, b, _c, _d, _e in parts]
    shuffled = list(zip(branch_parts, tlb_parts))
    rnd.shuffle(shuffled)

    merged_branch = BranchStats()
    merged_tlb = TLBStats()
    for branch, tlb in shuffled:
        merged_branch.merge(branch)
        merged_tlb.merge(tlb)
    assert merged_branch.branches == sum(p[0] for p in parts)
    assert merged_branch.taken == sum(p[1] for p in parts)
    assert merged_branch.mispredictions == sum(p[2] for p in parts)
    assert merged_branch.btb_hits == sum(p[3] for p in parts)
    assert merged_branch.btb_misses == sum(p[4] for p in parts)
    assert merged_tlb.accesses == sum(p[0] for p in parts)
    assert merged_tlb.misses == sum(p[1] for p in parts)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(counts, counts, counts, counts, counts, counts),
                min_size=1, max_size=6),
       st.randoms())
def test_cache_stats_merge_commutes(parts, rnd):
    stat_parts = []
    for a, b, c, d, e, f in parts:
        stats = CacheStats()
        stats.add_bulk(0, a, min(b, a))
        stats.add_bulk(1, c, min(d, c))
        stats.add_bulk(2, e, min(f, e))
        stats.writebacks = d
        stats.invalidations = f
        stat_parts.append(stats)
    shuffled = list(stat_parts)
    rnd.shuffle(shuffled)
    merged = CacheStats()
    for stats in shuffled:
        merged.merge(stats)
    assert merged.total_accesses == sum(s.total_accesses for s in stat_parts)
    assert merged.total_misses == sum(s.total_misses for s in stat_parts)
    assert merged.writebacks == sum(s.writebacks for s in stat_parts)
    assert merged.invalidations == sum(s.invalidations for s in stat_parts)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.dictionaries(
    st.sampled_from(("INST_RETIRED", "DATA_MEM_REFS", "DCU_LINES_IN",
                     "L2_DATA_MISS", "BR_MISS_PRED_RETIRED")),
    counts, max_size=5), min_size=1, max_size=6),
    st.randoms())
def test_event_counters_merge_commutes(parts, rnd):
    counter_parts = [EventCounters.from_dict(part) for part in parts]
    shuffled = list(counter_parts)
    rnd.shuffle(shuffled)
    merged = EventCounters()
    for counters in shuffled:
        merged.merge(counters)
    for event in {event for part in parts for event in part}:
        assert merged.get(event) == sum(part.get(event, 0) for part in parts)


def test_tape_recorder_records_and_counts_invocations():
    recorder = TapeRecorder(SYSTEM_B)
    recorder.visit("scan_next")
    recorder.visit_batch("predicate", 10)
    recorder.visit_batch("predicate", 0)     # no-op, like the real context
    recorder.read_address(0x100, 8)
    recorder.record_done(3)
    recorder.row_produced(2)
    ops = recorder.take()
    assert [op[0] for op in ops] == ["v", "vb", "dr", "rd", "rp"]
    assert recorder.op_invocations == {"scan_next": 1, "predicate": 1}
    assert recorder.take() == []             # tape drained
