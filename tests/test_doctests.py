"""Doctest pass over the :mod:`repro.adaptive` public API.

The runnable ``>>>`` examples in the adaptive subsystem's docstrings double
as its smallest integration tests -- the quickstart snippets README.md and
the API docs quote must actually execute.  Collected here so they run in
tier-1 (and in the CI ``docs`` job) without enabling ``--doctest-modules``
repo-wide.
"""

from __future__ import annotations

import doctest

import pytest

import repro.adaptive
import repro.adaptive.manager
import repro.adaptive.policy
import repro.adaptive.stats

MODULES = (repro.adaptive, repro.adaptive.stats, repro.adaptive.policy,
           repro.adaptive.manager)


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_adaptive_doctests_pass(module):
    failures, tested = doctest.testmod(module, verbose=False)
    assert failures == 0
    if module is not repro.adaptive:  # the package docstring has no examples
        assert tested > 0, f"{module.__name__} lost its runnable examples"
