"""Executor error paths and the ``_columns_for_table`` contract.

These paths were previously untested: instantiating an index plan against a
table with no index, planning against an unknown catalog table, and feeding
malformed qualified column names through ``row_value``.
"""

import pytest

from repro.execution import (ExecutionContext, ExecutorError, build_plan,
                             build_scan, execute_plan, execute_update)
from repro.execution.executor import _columns_for_table
from repro.execution.operators import OperatorError, row_value
from repro.execution.vectorized import build_vectorized_plan, build_vectorized_scan
from repro.hardware import SimulatedProcessor
from repro.query import ExecutionConfig, count_star
from repro.query.plans import (AggregatePlan, IndexPointLookupPlan,
                               IndexRangeScanPlan, SeqScanPlan, UpdatePlan)
from repro.storage import Catalog, CatalogError, microbenchmark_schema
from repro.systems import SYSTEM_B


def make_catalog(with_index: bool = False) -> Catalog:
    catalog = Catalog()
    schema, _ = microbenchmark_schema(100, "R")
    table = catalog.create_table("R", schema, record_size=100)
    table.insert_many((i, i % 10, i) for i in range(40))
    if with_index:
        catalog.create_index("R", "a2")
    return catalog


def make_context(catalog) -> ExecutionContext:
    return ExecutionContext(SimulatedProcessor(), SYSTEM_B, catalog.address_space)


class TestMissingIndex:
    def test_index_range_scan_plan_without_index_raises(self):
        catalog = make_catalog(with_index=False)
        plan = IndexRangeScanPlan(table="R", column="a2", low=1, high=5)
        with pytest.raises(ExecutorError, match="requires an index"):
            build_scan(plan, catalog, make_context(catalog))

    def test_vectorized_engine_raises_the_same_error(self):
        catalog = make_catalog(with_index=False)
        plan = IndexRangeScanPlan(table="R", column="a2", low=1, high=5)
        with pytest.raises(ExecutorError, match="requires an index"):
            build_vectorized_scan(plan, catalog, make_context(catalog))

    def test_point_lookup_without_index_raises(self):
        catalog = make_catalog(with_index=False)
        plan = IndexPointLookupPlan(table="R", column="a2", value=3)
        with pytest.raises(ExecutorError, match="requires an index"):
            build_scan(plan, catalog, make_context(catalog))


class TestUnknownTable:
    def test_execute_plan_on_unknown_table_raises_catalog_error(self):
        catalog = make_catalog()
        ctx = make_context(catalog)
        plan = SeqScanPlan(table="ghost", predicate=None)
        with pytest.raises(CatalogError, match="ghost"):
            execute_plan(plan, catalog, ctx)

    def test_vectorized_engine_raises_the_same_error(self):
        catalog = make_catalog()
        ctx = make_context(catalog)
        plan = SeqScanPlan(table="ghost", predicate=None)
        with pytest.raises(CatalogError, match="ghost"):
            execute_plan(plan, catalog, ctx,
                         execution=ExecutionConfig(engine="vectorized"))

    def test_aggregate_over_unknown_table(self):
        catalog = make_catalog()
        plan = AggregatePlan(input=SeqScanPlan(table="nope", predicate=None),
                             aggregates=(count_star(),))
        with pytest.raises(CatalogError):
            build_plan(plan, catalog, make_context(catalog))


class TestUpdatePlanMisuse:
    def test_build_plan_refuses_update_plans(self):
        catalog = make_catalog(with_index=True)
        plan = UpdatePlan(lookup=IndexPointLookupPlan(table="R", column="a2", value=3),
                          set_column="a3", set_value=0)
        with pytest.raises(ExecutorError, match="execute_update"):
            build_plan(plan, catalog, make_context(catalog))
        with pytest.raises(ExecutorError, match="execute_update"):
            build_vectorized_plan(plan, catalog, make_context(catalog))

    def test_execute_update_on_unknown_table(self):
        catalog = make_catalog()
        plan = UpdatePlan(lookup=IndexPointLookupPlan(table="ghost", column="a2", value=3),
                          set_column="a3", set_value=0)
        with pytest.raises(CatalogError):
            execute_update(plan, catalog, make_context(catalog))


class TestRowValue:
    def test_unqualified_and_qualified_hits(self):
        assert row_value({"a3": 5}, "a3") == 5
        assert row_value({"a3": 5}, "R.a3") == 5
        assert row_value({"R.a3": 5}, "R.a3") == 5

    def test_unknown_column_raises_operator_error(self):
        with pytest.raises(OperatorError, match="no column"):
            row_value({"a3": 5}, "R.a9")

    def test_malformed_qualification_falls_back_to_short_name(self):
        # "X.a3" on a row keyed by short names resolves through the short
        # name; the qualifier is advisory at row level (plans qualify with
        # table names, rows carry unqualified keys).
        assert row_value({"a3": 5}, "X.a3") == 5

    def test_empty_short_name_raises(self):
        with pytest.raises(OperatorError):
            row_value({"a3": 5}, "R.")


class TestColumnsForTable:
    def make_table(self):
        catalog = Catalog()
        schema, _ = microbenchmark_schema(100, "R")
        return catalog.create_table("R", schema, record_size=100)

    def test_caller_order_is_preserved(self):
        table = self.make_table()
        assert _columns_for_table(table, ["a3", "a1", "a2"]) == ("a3", "a1", "a2")

    def test_duplicates_keep_first_occurrence(self):
        table = self.make_table()
        assert _columns_for_table(table, ["a2", "R.a2", "a2", "a1"]) == ("a2", "a1")

    def test_foreign_qualifier_is_excluded(self):
        table = self.make_table()
        # "S.a3" names another table's column; even though R declares a
        # column a3 too, the request is not for R's.
        assert _columns_for_table(table, ["S.a3", "R.a1"]) == ("a1",)

    def test_unknown_columns_are_dropped(self):
        table = self.make_table()
        assert _columns_for_table(table, ["zz", "R.zz", "a2"]) == ("a2",)
