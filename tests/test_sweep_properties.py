"""Property tests for the workload sweeps and the synthetic DSS generator.

Three families of properties, checked with Hypothesis over sampled
configurations rather than the fixed sweep points:

* **Seed determinism.**  Building a workload twice from the same config
  produces byte-identical table data and identical query results -- for
  the microbenchmark sweep points (:mod:`repro.workloads.sweeps`) and the
  TPC-D generator (:mod:`repro.workloads.tpcd`) alike.  Every figure in
  the artifact rests on this: a measurement is only reproducible if the
  data underneath it is.
* **Record-size monotonicity.**  With the row count held constant, a
  larger record size can never shrink the heap: the pages a sequential
  scan touches are non-decreasing in the record size, per layout, and
  strictly increase when the size at least doubles.
* **Build-order independence.**  On the warmed grid, the simulated counts
  of a sweep point do not depend on which other points were measured (or
  built) before it -- permuting the measurement order changes nothing.

The example counts are deliberately small: every example builds at least
one database, so the budget goes to diverse configurations, not volume.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.session import Session
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.systems.vendors import system_by_key
from repro.workloads.micro import MicroWorkloadConfig
from repro.workloads.sweeps import (build_database_for_point, pages_touched,
                                    record_size_sweep)
from repro.workloads.tpcd import TPCDConfig, TPCDWorkload

LAYOUTS = ("nsm", "pax")

#: Database-building examples are expensive; keep the counts small.
BUILD_SETTINGS = settings(max_examples=8, deadline=None,
                          suppress_health_check=[HealthCheck.too_slow])
MEASURE_SETTINGS = settings(max_examples=4, deadline=None,
                            suppress_health_check=[HealthCheck.too_slow])

#: Smallest dataset the config machinery allows (300-row minimum floor).
TINY_MICRO = MicroWorkloadConfig(scale=1 / 2000)


def _tiny_tpcd(seed: int, lineitem_rows: int) -> TPCDConfig:
    return TPCDConfig(lineitem_rows=lineitem_rows, orders_rows=40,
                      part_rows=20, supplier_rows=10, seed=seed)


def _query_rows(database, workload) -> list:
    """Rows of the first three suite queries, measured on ``database``."""
    with Session(database, system_by_key("B"), engine="vectorized") as session:
        return [session.execute(query, warmup_runs=0).rows
                for query in workload.queries()[:3]]


# ----------------------------------------------------------- seed determinism
@BUILD_SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**20),
       lineitem_rows=st.integers(min_value=60, max_value=160),
       layout=st.sampled_from(LAYOUTS))
def test_tpcd_build_is_seed_deterministic(seed, lineitem_rows, layout):
    """Same TPCDConfig ==> byte-identical pages and identical query rows."""
    config = _tiny_tpcd(seed, lineitem_rows)
    first = TPCDWorkload(config).build(layout_style=layout)
    second = TPCDWorkload(config).build(layout_style=layout)
    assert first.data_checkpoint() == second.data_checkpoint()
    assert _query_rows(first, TPCDWorkload(config)) == \
        _query_rows(second, TPCDWorkload(config))


@BUILD_SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**20),
       record_size=st.integers(min_value=16, max_value=220),
       layout=st.sampled_from(LAYOUTS))
def test_record_size_point_is_seed_deterministic(seed, record_size, layout):
    """Same sweep-point config ==> byte-identical pages, identical answers."""
    config = replace(TINY_MICRO, seed=seed, record_size=record_size)
    point = record_size_sweep(config, record_sizes=(record_size,))[0]
    first = build_database_for_point(point, layout_style=layout)
    second = build_database_for_point(point, layout_style=layout)
    assert first.data_checkpoint() == second.data_checkpoint()
    query = point.workload.sequential_range_selection()
    with Session(first, system_by_key("B")) as session:
        rows_first = session.execute(query, warmup_runs=0).rows
    with Session(second, system_by_key("B")) as session:
        rows_second = session.execute(query, warmup_runs=0).rows
    assert rows_first == rows_second
    assert len(rows_first) == 1  # the scan aggregates to a single row


def test_tpcd_different_seeds_differ():
    """Sanity for the determinism tests: the seed actually matters."""
    first = TPCDWorkload(_tiny_tpcd(1, 80)).build()
    second = TPCDWorkload(_tiny_tpcd(2, 80)).build()
    assert first.data_checkpoint() != second.data_checkpoint()


# ------------------------------------------------- record-size monotonicity
@BUILD_SETTINGS
@given(sizes=st.lists(st.integers(min_value=16, max_value=240),
                      min_size=2, max_size=4, unique=True).map(sorted),
       layout=st.sampled_from(LAYOUTS))
def test_record_size_pages_touched_monotone(sizes, layout):
    """Pages swept by the sequential scan never shrink as records grow."""
    points = record_size_sweep(TINY_MICRO, record_sizes=tuple(sizes))
    pages = [pages_touched(build_database_for_point(point, layout_style=layout),
                           "R")
             for point in points]
    assert all(earlier <= later for earlier, later in zip(pages, pages[1:])), \
        f"pages_touched not monotone for sizes {sizes} under {layout}: {pages}"
    if sizes[-1] >= 2 * sizes[0]:
        assert pages[-1] > pages[0], (
            f"doubling the record size must touch strictly more pages "
            f"({sizes[0]}B -> {sizes[-1]}B gave {pages[0]} -> {pages[-1]})")


@pytest.mark.parametrize("layout", LAYOUTS)
def test_paper_record_sizes_strictly_increase_pages(layout):
    """The paper's own 20B..200B points strictly grow the scanned heap."""
    points = record_size_sweep(TINY_MICRO)
    pages = [pages_touched(build_database_for_point(point, layout_style=layout),
                           "R")
             for point in points]
    assert pages == sorted(pages)
    assert len(set(pages)) == len(pages), \
        f"expected strictly increasing page counts, got {pages}"


# ---------------------------------------------- build-order independence
def _measured_cycles(runner: ExperimentRunner, record_sizes) -> dict:
    """Warmed-grid SRS cycles per record size, measured in the given order."""
    return {size: runner.micro_result("B", "SRS", record_size=size,
                                      layout="nsm").metrics.cycles
            for size in record_sizes}


@MEASURE_SETTINGS
@given(order=st.permutations((48, 100, 200)))
def test_sweep_points_independent_of_build_order(order):
    """Permuting warmed-grid measurement order never changes the counts.

    Each runner builds its record-size grid databases lazily in measurement
    order; since every point gets its own build and the address checkpoint
    rolls sessions back, the order must be unobservable.
    """
    canonical = ExperimentRunner(ExperimentConfig(micro=TINY_MICRO,
                                                  os_interference=False))
    permuted = ExperimentRunner(ExperimentConfig(micro=TINY_MICRO,
                                                 os_interference=False))
    reference = _measured_cycles(canonical, sorted(order))
    shuffled = _measured_cycles(permuted, order)
    assert shuffled == reference


@MEASURE_SETTINGS
@given(order=st.permutations((0.0, 0.1, 0.5)))
def test_selectivity_points_independent_of_order(order):
    """Selectivity points share one warmed build; order is unobservable."""
    canonical = ExperimentRunner(ExperimentConfig(micro=TINY_MICRO,
                                                  os_interference=False))
    permuted = ExperimentRunner(ExperimentConfig(micro=TINY_MICRO,
                                                 os_interference=False))
    reference = {sel: canonical.micro_result("B", "SRS", selectivity=sel,
                                             layout="nsm").metrics.cycles
                 for sel in sorted(order)}
    shuffled = {sel: permuted.micro_result("B", "SRS", selectivity=sel,
                                           layout="nsm").metrics.cycles
                for sel in order}
    assert shuffled == reference
