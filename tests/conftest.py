"""Shared fixtures: small-scale datasets that keep the suite fast.

The unit and integration tests run the same code paths as the paper-scale
benchmarks but on heavily scaled-down datasets (a few hundred rows).  Cache
*behaviour* at that scale is not representative -- the benchmarks under
``benchmarks/`` are responsible for the quantitative claims -- so the tests
concentrate on functional correctness, invariants and the plumbing of the
measurement framework.
"""

from __future__ import annotations

import pytest

from repro.engine import Database, Session
from repro.hardware import OSInterferenceConfig, SimulatedProcessor
from repro.storage import Catalog
from repro.systems import ALL_SYSTEMS, SYSTEM_A, SYSTEM_B, SYSTEM_C, SYSTEM_D
from repro.workloads import MicroWorkload, MicroWorkloadConfig

#: Scale used by tests: ~600-row R, ~20-row S.
TEST_SCALE = 1.0 / 2000.0


@pytest.fixture(scope="session")
def micro_workload() -> MicroWorkload:
    return MicroWorkload(MicroWorkloadConfig(scale=TEST_SCALE, minimum_r_rows=600))


@pytest.fixture(scope="session")
def micro_database(micro_workload) -> Database:
    database = micro_workload.build()
    micro_workload.create_selection_index(database)
    return database


@pytest.fixture
def processor() -> SimulatedProcessor:
    return SimulatedProcessor()


@pytest.fixture
def catalog() -> Catalog:
    return Catalog()


@pytest.fixture(params=[profile.key for profile in ALL_SYSTEMS])
def system_profile(request):
    """Parametrised over the four commercial-system profiles."""
    from repro.systems import system_by_key
    return system_by_key(request.param)


@pytest.fixture
def session_b(micro_database) -> Session:
    """A measurement session for System B on the shared tiny dataset."""
    return Session(micro_database, SYSTEM_B,
                   os_interference=OSInterferenceConfig(interval_instructions=50_000))
