"""End-to-end tests for the three-command reproduction artifact.

Drives the full pipeline (:mod:`repro.experiments.artifact`) at the CI
scale preset into a temporary directory -- exactly what the ``artifact-
smoke`` CI job and ``scripts/run_artifact.py all --scale ci`` do -- and
pins the contract each stage provides:

* ``run_all`` measures every registered artifact and persists raw JSON;
* ``csv`` derives one non-empty CSV per artifact (the canonical outputs),
  failing loudly on missing or incomplete raw data;
* ``plot`` is a graceful no-op without matplotlib (never an error).

The measurement pass is module-scoped: one CI-scale run (~seconds)
backs every assertion.
"""

from __future__ import annotations

import csv
import json

import pytest

from repro.analysis import artifact_io
from repro.experiments import artifact
from repro.experiments.artifact import (ArtifactError, ArtifactOptions,
                                        REGISTRY, config_for_scale,
                                        emit_csvs, expected_csvs,
                                        render_plots, run_all, raw_path,
                                        spec_by_name)

SILENT = lambda *args, **kwargs: None  # noqa: E731 - quiet echo for tests


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    """One CI-scale run_all + csv pass shared by the module's tests."""
    out = tmp_path_factory.mktemp("artifact")
    run_all(out, scale="ci", echo=SILENT)
    emit_csvs(out, echo=SILENT)
    return out


# ----------------------------------------------------------------- pipeline
def test_raw_measurements_cover_every_registered_artifact(artifact_dir):
    raw = artifact_io.read_raw(raw_path(artifact_dir))
    assert sorted(raw) == sorted(spec.name for spec in REGISTRY)
    for spec in REGISTRY:
        entry = raw[spec.name]
        assert entry["title"] == spec.title
        assert entry["columns"] == list(spec.columns)
        assert entry["scale"] == "ci"
        assert entry["data"], f"{spec.name} measured no data"


def test_every_expected_csv_exists_and_is_non_empty(artifact_dir):
    paths = expected_csvs(artifact_dir)
    assert len(paths) == len(REGISTRY)
    for path in paths:
        assert path.exists(), f"missing {path.name}"
        assert path.stat().st_size > 0, f"empty {path.name}"


def test_csvs_carry_headers_and_data_rows(artifact_dir):
    for spec in REGISTRY:
        with open(artifact_dir / "csv" / f"{spec.name}.csv", newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == list(spec.columns), f"{spec.name} header mismatch"
        assert len(rows) > 1, f"{spec.name} has no data rows"
        assert all(len(row) == len(spec.columns) for row in rows[1:]), \
            f"{spec.name} has ragged rows"


def test_per_layout_artifacts_cover_both_layouts(artifact_dir):
    raw = artifact_io.read_raw(raw_path(artifact_dir))
    for name in ("figure_5_3", "figure_5_6", "tpcc_summary",
                 "record_size_sweep", "selectivity_sweep",
                 "tpcd_matrix", "tpcc_matrix"):
        assert sorted(raw[name]["data"]) == ["nsm", "pax"], \
            f"{name} missing a layout"


def test_plot_stage_is_graceful_without_matplotlib(artifact_dir):
    if artifact_io.matplotlib_available():
        pytest.skip("matplotlib installed; the no-op path is untestable")
    messages = []
    rendered = render_plots(artifact_dir, echo=messages.append)
    assert rendered == []
    assert any("matplotlib" in message for message in messages)
    assert not (artifact_dir / "plots").exists()


def test_csv_stage_is_rederivable_from_raw(artifact_dir, tmp_path):
    """csv re-runs from persisted raw JSON alone (stage separability)."""
    other = tmp_path / "rederived"
    other.mkdir()
    (other / "raw").mkdir()
    raw = raw_path(artifact_dir).read_text()
    raw_path(other).write_text(raw)
    written = emit_csvs(other, echo=SILENT)
    for path, original in zip(written, expected_csvs(artifact_dir)):
        assert path.read_text() == original.read_text()


# -------------------------------------------------------------- error paths
def test_csv_stage_requires_raw_measurements(tmp_path):
    with pytest.raises(ArtifactError, match="run_all"):
        emit_csvs(tmp_path, echo=SILENT)


def test_plot_stage_requires_raw_measurements(tmp_path):
    with pytest.raises(ArtifactError, match="run_all"):
        render_plots(tmp_path, echo=SILENT)


def test_csv_stage_rejects_incomplete_raw(artifact_dir, tmp_path):
    raw = json.loads(raw_path(artifact_dir).read_text())
    del raw["figure_5_1"]
    (tmp_path / "raw").mkdir()
    raw_path(tmp_path).write_text(json.dumps(raw))
    with pytest.raises(ArtifactError, match="figure_5_1"):
        emit_csvs(tmp_path, echo=SILENT)


def test_unknown_scale_preset_is_an_artifact_error():
    with pytest.raises(ArtifactError, match="unknown scale"):
        config_for_scale("huge")


def test_unknown_spec_name_is_an_artifact_error():
    with pytest.raises(ArtifactError, match="unknown artifact"):
        spec_by_name("figure_9_9")


# ------------------------------------------------------------------ helpers
def test_flatten_rejects_depth_mismatches():
    with pytest.raises(ValueError, match="deeper"):
        artifact_io.flatten({"a": {"b": 1}}, depth=1)
    with pytest.raises(ValueError, match="shallower"):
        artifact_io.flatten({"a": 1}, depth=2)


def test_flatten_preserves_insertion_order():
    data = {"z": {"second": 2, "first": 1}, "a": {"x": 3}}
    assert artifact_io.flatten(data, depth=2) == [
        ("z", "second", 2), ("z", "first", 1), ("a", "x", 3)]


def test_registry_names_are_unique():
    names = [spec.name for spec in REGISTRY]
    assert len(names) == len(set(names))


def test_options_add_worker_arms():
    """workers=(1, 2) adds a w2 arm to both TPC matrices."""
    runner = artifact.ExperimentRunner(config_for_scale("ci"))
    data = artifact._tpcd_matrix(runner, ArtifactOptions(workers=(1, 2)))
    for layout in artifact.LAYOUTS:
        assert "vectorized/w2" in data[layout]
        base = data[layout]["vectorized"]
        arm = data[layout]["vectorized/w2"]
        assert arm["cycles"] == base["cycles"], \
            "worker arms must be count-identical by design"
