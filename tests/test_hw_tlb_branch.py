"""Tests for the TLB models and the BTB-based branch predictor."""

import pytest

from repro.hardware.branch import BranchPredictor
from repro.hardware.specs import BranchSpec, TLBSpec
from repro.hardware.tlb import TLB


class TestTLB:
    def make(self, entries=4) -> TLB:
        return TLB(TLBSpec(name="toy", entries=entries, page_bytes=4096))

    def test_miss_then_hit_within_page(self):
        tlb = self.make()
        assert tlb.access(0x1000) == 1
        assert tlb.access(0x1FFF) == 0
        assert tlb.access(0x2000) == 1

    def test_lru_eviction(self):
        tlb = self.make(entries=2)
        tlb.access(0x0000)
        tlb.access(0x1000)
        tlb.access(0x0000)          # page 0 becomes MRU
        tlb.access(0x2000)          # evicts page 1
        assert tlb.access(0x0000) == 0
        assert tlb.access(0x1000) == 1

    def test_capacity_is_respected(self):
        tlb = self.make(entries=4)
        for page in range(10):
            tlb.access(page * 4096)
        assert tlb.resident_pages() <= 4

    def test_flush(self):
        tlb = self.make()
        tlb.access(0)
        assert tlb.flush() == 1
        assert tlb.access(0) == 1

    def test_miss_rate(self):
        tlb = self.make()
        tlb.access(0)
        tlb.access(0)
        assert tlb.stats.miss_rate == pytest.approx(0.5)

    def test_stats_reset(self):
        tlb = self.make()
        tlb.access(0)
        tlb.reset_stats()
        assert tlb.stats.accesses == 0


class TestBranchPredictor:
    def make(self, **kwargs) -> BranchPredictor:
        return BranchPredictor(BranchSpec(**kwargs))

    def test_repeated_taken_branch_becomes_predicted(self):
        predictor = self.make()
        site = 0x4000
        for _ in range(8):
            predictor.execute(site, taken=True)
        assert predictor.execute(site, taken=True) is False  # correctly predicted

    def test_loop_exit_mispredicts_once(self):
        predictor = self.make()
        site = 0x4000
        for _ in range(20):
            predictor.execute(site, taken=True)
        assert predictor.execute(site, taken=False) is True

    def test_alternating_pattern_learned_by_two_level_history(self):
        """A strictly alternating branch is predictable with history bits."""
        predictor = self.make(history_bits=4)
        site = 0x8000
        outcomes = [bool(i % 2) for i in range(400)]
        mispredictions = sum(predictor.execute(site, taken) for taken in outcomes)
        # After warm-up the pattern table locks onto the alternation.
        late = sum(predictor.execute(site, bool(i % 2)) for i in range(400, 440))
        assert late <= 2

    def test_static_prediction_on_btb_miss_backward_taken(self):
        predictor = self.make()
        # A backward branch never seen before: static prediction says taken.
        assert predictor.execute(0xAAAA, taken=True, backward=True) is False
        # A forward branch never seen before: static prediction says not taken.
        predictor2 = self.make()
        assert predictor2.execute(0xBBBB, taken=False, backward=False) is False
        assert predictor2.stats.btb_misses == 1

    def test_not_taken_branches_do_not_populate_btb(self):
        predictor = self.make()
        site = 0xC000
        predictor.execute(site, taken=False)
        predictor.execute(site, taken=False)
        assert predictor.stats.btb_misses == 2

    def test_btb_capacity_causes_misses(self):
        predictor = self.make(btb_entries=16, btb_associativity=4)
        # 64 distinct taken branch sites cycle through a 16-entry BTB.
        sites = [0x1000 + i * 64 for i in range(64)]
        for _ in range(3):
            for site in sites:
                predictor.execute(site, taken=True)
        assert predictor.stats.btb_miss_rate > 0.5
        assert predictor.resident_entries() <= 16

    def test_statistics_accumulate(self):
        predictor = self.make()
        predictor.execute(0x100, True)
        predictor.execute(0x100, True)
        predictor.execute(0x100, False)
        stats = predictor.stats
        assert stats.branches == 3
        assert stats.taken == 2
        assert 0.0 <= stats.misprediction_rate <= 1.0

    def test_flush_clears_state(self):
        predictor = self.make()
        for _ in range(4):
            predictor.execute(0x100, True)
        predictor.flush()
        assert predictor.resident_entries() == 0
        assert predictor.stats.branches == 4  # stats survive a flush
        predictor.reset_stats()
        assert predictor.stats.branches == 0
