"""Differential harness for the query-tracing subsystem.

The identity wall: ``tracing="off"`` must run the exact untraced code
path, and ``"spans"``/``"full"`` must change **zero** simulated counts —
identical result rows, identical cache/TLB/branch/event counts, identical
routine invocations — on every planner-producible plan shape, both page
layouts, both charge modes and under morsel parallelism.  Tracing only
*reads* hardware state between charges, so any divergence is a bug in the
span machinery, not noise.

On top of the identity wall, the attribution contract: the root span's
synthesized counters equal the finalized whole-query counters exactly,
and per-node *self* deltas sum back to the root for every event except
``CPU_CLK_UNHALTED`` (whose assembly is the non-additive
``max(gross - overlap, computation)``).
"""

from __future__ import annotations

import json

import pytest

from repro.engine import Session
from repro.observability import (Tracer, chrome_trace, chrome_trace_json,
                                 render_trace, trace_to_dict)
from repro.query.plans import ExecutionConfig
from repro.systems import SYSTEM_B

from test_parallel_execution import (PLAN_SHAPES, build_database,
                                     hardware_counts)

TRACED_MODES = ("spans", "full")


def run_traced(shape: str, tracing: str, layout: str = "nsm",
               charge_mode: str = "span", parallelism: int = 1,
               morsel_pages=None, memory_budget_bytes=None):
    """Execute one plan shape and return rows/counts/invocations + trace."""
    query, policy = PLAN_SHAPES[shape]()
    profile = policy if hasattr(policy, "key") else SYSTEM_B
    db = build_database(layout_style=layout)
    session = Session(db, profile, os_interference=None, engine="vectorized",
                      charge_mode=charge_mode, parallelism=parallelism,
                      parallel_backend="inline", morsel_pages=morsel_pages,
                      memory_budget_bytes=memory_budget_bytes,
                      tracing=tracing)
    if not hasattr(policy, "key"):
        session.planner.policy = policy
    result = session.execute(query, warmup_runs=0)
    session.processor.finalize()
    counts = hardware_counts(session.processor)
    invocations = dict(session.context.op_invocations)
    processor = session.processor
    spec = session.spec
    session.close()
    return {"rows": result.rows, "counts": counts,
            "invocations": invocations, "trace": result.trace,
            "counters": result.counters, "processor": processor,
            "spec": spec}


# --------------------------------------------------------------- identity
@pytest.mark.parametrize("layout", ("nsm", "pax"))
@pytest.mark.parametrize("shape", sorted(PLAN_SHAPES))
def test_tracing_identical_every_plan_shape(shape, layout):
    baseline = run_traced(shape, "off", layout=layout)
    assert baseline["trace"] is None
    for mode in TRACED_MODES:
        traced = run_traced(shape, mode, layout=layout)
        assert traced["rows"] == baseline["rows"], "rows diverged"
        assert traced["counts"] == baseline["counts"], "counts diverged"
        assert traced["invocations"] == baseline["invocations"]
        assert traced["trace"] is not None


@pytest.mark.parametrize("charge_mode", ("span", "per_address"))
def test_tracing_identical_under_both_charge_modes(charge_mode):
    baseline = run_traced("agg_seq_scan", "off", charge_mode=charge_mode)
    for mode in TRACED_MODES:
        traced = run_traced("agg_seq_scan", mode, charge_mode=charge_mode)
        assert traced["rows"] == baseline["rows"]
        assert traced["counts"] == baseline["counts"]


@pytest.mark.parametrize("shape", ("agg_seq_scan", "hash_join"))
def test_tracing_identical_under_morsel_parallelism(shape):
    baseline = run_traced(shape, "off", parallelism=2, morsel_pages=1)
    for mode in TRACED_MODES:
        traced = run_traced(shape, mode, parallelism=2, morsel_pages=1)
        assert traced["rows"] == baseline["rows"]
        assert traced["counts"] == baseline["counts"]
    # ... and tracing under workers matches untraced serial execution too.
    serial = run_traced(shape, "off")
    assert baseline["rows"] == serial["rows"]
    assert baseline["counts"] == serial["counts"]


def test_tracing_identical_with_spill_budget():
    budget = 600  # well under the build side's ~4000-byte footprint
    baseline = run_traced("hash_join", "off", memory_budget_bytes=budget)
    traced = run_traced("hash_join", "full", memory_budget_bytes=budget)
    assert traced["rows"] == baseline["rows"]
    assert traced["counts"] == baseline["counts"]
    io = traced["trace"].inclusive_counters(traced["processor"])
    assert io is not None  # trace exists alongside spilling
    spans = [node for _, node in traced["trace"].walk() if node.kind == "io"]
    assert spans, "spill I/O produced no io-kind spans under full tracing"
    stats = traced["trace"].io_stats
    assert stats.get("page_writes", 0) > 0


# ------------------------------------------------------------ attribution
@pytest.mark.parametrize("shape", ("agg_seq_scan", "hash_join", "update"))
def test_root_span_matches_finalized_counters(shape):
    traced = run_traced(shape, "spans")
    root = traced["trace"]
    synthesized = root.inclusive_counters(traced["processor"]).as_dict()
    finalized = traced["counters"].as_dict()
    assert synthesized == finalized


@pytest.mark.parametrize("parallelism,morsel_pages", [(1, None), (2, 1)])
def test_self_deltas_sum_to_root(parallelism, morsel_pages):
    traced = run_traced("hash_join", "spans", parallelism=parallelism,
                        morsel_pages=morsel_pages)
    root = traced["trace"]
    processor = traced["processor"]
    totals = {}
    for _, node in root.walk():
        for event, count in node.self_counters(processor).as_dict().items():
            totals[event] = totals.get(event, 0) + count
    root_counts = root.inclusive_counters(processor).as_dict()
    for event, count in root_counts.items():
        if event == "CPU_CLK_UNHALTED":
            continue  # assembly is max(gross - overlap, comp): not additive
        assert totals.get(event, 0) == count, f"{event} not additive"


def test_update_trace_has_apply_span():
    traced = run_traced("update", "spans")
    names = [node.name for _, node in traced["trace"].walk()]
    assert "update_apply" in names
    assert "query_setup" in names


def test_full_mode_records_replay_subspans():
    traced = run_traced("agg_seq_scan", "full", parallelism=2,
                        morsel_pages=1)
    kinds = {node.kind for _, node in traced["trace"].walk()}
    assert "replay" in kinds
    # spans mode keeps the tree operator-only: no replay subspans.
    lean = run_traced("agg_seq_scan", "spans", parallelism=2, morsel_pages=1)
    assert "replay" not in {node.kind for _, node in lean["trace"].walk()}


# --------------------------------------------------------------- exports
def test_render_and_dict_exports():
    traced = run_traced("hash_join", "spans")
    text = render_trace(traced["trace"], traced["spec"], traced["processor"])
    assert "VecHashJoinOperator" in text
    assert "self=" in text and "incl=" in text
    payload = trace_to_dict(traced["trace"], traced["spec"],
                            traced["processor"])
    assert payload["children"], "trace dict lost its children"
    parsed = json.loads(json.dumps(payload))
    assert parsed["name"] == traced["trace"].name


def test_chrome_trace_shows_distinct_scan_build_probe_spans():
    traced = run_traced("hash_join", "full")
    payload = chrome_trace(traced["trace"], traced["spec"],
                           traced["processor"])
    events = payload["traceEvents"]
    assert events and all(event["ph"] == "X" for event in events)
    roles = {event["args"].get("role") for event in events}
    assert {"build", "probe"} <= roles
    scans = [event for event in events
             if event["name"].startswith("VecSeqScanOperator")]
    assert len(scans) == 2 and scans[0]["name"] != scans[1]["name"]
    json.loads(chrome_trace_json(traced["trace"], traced["spec"],
                                 traced["processor"]))


# ------------------------------------------------------------ guard rails
def test_invalid_tracing_mode_rejected():
    with pytest.raises(ValueError):
        ExecutionConfig(tracing="verbose")
    db = build_database()
    with pytest.raises(ValueError):
        Session(db, SYSTEM_B, os_interference=None, tracing="everything")


def test_tracer_refuses_off_mode():
    db = build_database()
    session = Session(db, SYSTEM_B, os_interference=None, engine="vectorized")
    try:
        with pytest.raises(ValueError):
            Tracer(session.context, session.spec, "off")
    finally:
        session.close()


def test_tuple_engine_traces_too():
    query, policy = PLAN_SHAPES["agg_seq_scan"]()
    db = build_database()
    baseline = Session(db, policy, os_interference=None, engine="tuple")
    rows_off = baseline.execute(query, warmup_runs=0).rows
    counts_off = hardware_counts(baseline.processor)
    baseline.close()
    db2 = build_database()
    traced = Session(db2, policy, os_interference=None, engine="tuple",
                     tracing="spans")
    result = traced.execute(query, warmup_runs=0)
    counts_on = hardware_counts(traced.processor)
    traced.close()
    assert result.rows == rows_off
    assert counts_on == counts_off
    assert result.trace is not None
    assert any(node.kind == "operator" for _, node in result.trace.walk())
