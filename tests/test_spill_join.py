"""Differential harness for the memory-budgeted (spilling) hash join.

The grace/hybrid spilling path must be invisible at the result level: for
*every* ``memory_budget_bytes`` -- from "everything fits" down to budgets
smaller than a single build row -- the vectorized hash join must produce
exactly the rows the unbudgeted in-memory join produces, in the same
probe-major order, with the same dict-merge column order.  These tests pin
that contract deterministically (a ladder of budgets straddling the build
side's footprint), adversarially (Hypothesis drawing random budgets, batch
sizes and layouts) and across the other engine axes (tuple engine, charge
modes, morsel workers).

Also covered here: the hash-area resize when the observed build
cardinality exceeds the planner's estimate (satellite of the same PR), the
``partition_count`` policy decision, and the config-level validation of
the budget knob.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive.policy import (MAX_PARTITIONS, AdaptivePolicy,
                                   GreedyRankPolicy, plan_partition_count)
from repro.adaptive.stats import RuntimeStatsCollector
from repro.engine import Database, Session
from repro.execution import ExecutionContext, execute_plan
from repro.execution.vectorized import VecHashJoinOperator, build_vectorized_scan
from repro.hardware import SimulatedProcessor
from repro.query import ExecutionConfig, JoinQuery, Planner, count_star
from repro.query.planner import DefaultPolicy
from repro.query.plans import HashJoinPlan
from repro.storage.schema import ColumnType
from repro.systems import SYSTEM_B

R_ROWS = 108
S_ROWS = 12
KEY_DOMAIN = 18          # R.a2 in [1, 18], S.a1 unique in [1, 12]: ~2/3 match

JOIN_QUERY = JoinQuery(left_table="R", right_table="S",
                       left_column="a2", right_column="a1",
                       aggregates=(count_star(),))

#: Build side footprint: S_ROWS rows at record_size 100.
BUILD_BYTES = S_ROWS * 100


def build_database(layout_style: str = "nsm", seed: int = 7,
                   s_rows: int = S_ROWS) -> Database:
    db = Database()
    columns = [("a1", ColumnType.INT32), ("a2", ColumnType.INT32),
               ("a3", ColumnType.INT32)]
    db.create_table("R", columns, record_size=100, layout_style=layout_style)
    db.create_table("S", columns, record_size=100, layout_style=layout_style)
    rng = random.Random(seed)
    db.load("R", [(i + 1, rng.randint(1, KEY_DOMAIN), rng.randint(0, 9_999))
                  for i in range(R_ROWS)])
    db.load("S", [(i + 1, rng.randint(1, KEY_DOMAIN), rng.randint(0, 9_999))
                  for i in range(s_rows)])
    return db


def join_plan_for(db: Database) -> HashJoinPlan:
    plan = Planner(db.catalog, DefaultPolicy(join_algorithm="hash")).plan(JOIN_QUERY)
    assert isinstance(plan.input, HashJoinPlan)
    return plan.input


def run_join(layout: str, budget, batch_size: int = 64,
             charge_mode: str = "span", seed: int = 7):
    """One spilling-join execution on a fresh seeded database."""
    db = build_database(layout, seed=seed)
    ctx = ExecutionContext(SimulatedProcessor(), SYSTEM_B, db.address_space,
                           charge_mode=charge_mode)
    ctx.memory_budget_bytes = budget
    rows = execute_plan(join_plan_for(db), db.catalog, ctx,
                        execution=ExecutionConfig(engine="vectorized",
                                                  batch_size=batch_size,
                                                  charge_mode=charge_mode,
                                                  memory_budget_bytes=budget))
    return rows, ctx


@pytest.fixture(scope="module")
def baselines():
    """Unbudgeted reference rows per layout (the identity target)."""
    return {layout: run_join(layout, None)[0] for layout in ("nsm", "pax")}


# Budgets straddling the build footprint: everything-resident, exactly the
# footprint, fractions that force 2..many partitions, and degenerate
# budgets below one row / one page.
BUDGET_LADDER = (10 * BUILD_BYTES, 2 * BUILD_BYTES, BUILD_BYTES,
                 BUILD_BYTES // 2, BUILD_BYTES // 4, 350, 96)


class TestBudgetSweepIdentity:
    @pytest.mark.parametrize("layout", ["nsm", "pax"])
    @pytest.mark.parametrize("budget", BUDGET_LADDER)
    def test_rows_identical_at_every_budget(self, baselines, layout, budget):
        rows, ctx = run_join(layout, budget)
        assert rows == baselines[layout]
        # Same dict-merge column order, not just equal mappings.
        if rows:
            assert list(rows[0]) == list(baselines[layout][0])

    @pytest.mark.parametrize("layout", ["nsm", "pax"])
    def test_tight_budgets_actually_spill(self, layout):
        _, ctx = run_join(layout, BUILD_BYTES // 2)
        assert ctx.io_stats["page_reads"] > 0
        assert ctx.io_stats["page_writes"] > 0

    @pytest.mark.parametrize("layout", ["nsm", "pax"])
    def test_resident_budgets_do_no_io(self, layout):
        _, ctx = run_join(layout, 10 * BUILD_BYTES)
        assert ctx.io_stats["page_reads"] == 0
        assert ctx.io_stats["page_writes"] == 0

    def test_spilled_join_matches_tuple_engine(self, baselines):
        db = build_database("nsm")
        ctx = ExecutionContext(SimulatedProcessor(), SYSTEM_B, db.address_space)
        tuple_rows = execute_plan(join_plan_for(db), db.catalog, ctx)
        spilled_rows, _ = run_join("nsm", BUILD_BYTES // 3)
        assert spilled_rows == tuple_rows == baselines["nsm"]


class TestChargeModeIdentity:
    """Span charging must stay a pure simulator optimisation under spilling."""

    @pytest.mark.parametrize("budget", [BUILD_BYTES // 2, 350])
    def test_span_and_per_address_agree(self, budget):
        outcomes = {}
        for mode in ("per_address", "span"):
            rows, ctx = run_join("pax", budget, charge_mode=mode)
            processor = ctx.processor
            processor.finalize()
            snap = processor.caches.snapshot()
            counts = {
                "l1d": snap.l1d, "l2": snap.l2,
                "dtlb": processor.dtlb.stats.as_dict(),
                "user": dict(processor.counters.user),
                "sup": dict(processor.counters.sup),
            }
            outcomes[mode] = (rows, counts, ctx.io_stats.copy())
        rows_span, counts_span, io_span = outcomes["span"]
        rows_ref, counts_ref, io_ref = outcomes["per_address"]
        assert rows_span == rows_ref
        assert counts_span == counts_ref
        assert io_span == io_ref


@given(budget=st.integers(min_value=64, max_value=4 * BUILD_BYTES),
       layout=st.sampled_from(["nsm", "pax"]),
       batch_size=st.sampled_from([1, 7, 64]))
@settings(max_examples=15, deadline=None)
def test_hypothesis_random_budgets_are_invisible(budget, layout, batch_size):
    reference, _ = run_join(layout, None, batch_size=64)
    rows, _ = run_join(layout, budget, batch_size=batch_size)
    assert rows == reference


class TestMorselWorkers:
    @pytest.mark.parametrize("budget", [None, BUILD_BYTES // 2])
    def test_parallel_session_rows_match_serial(self, budget):
        results = {}
        for workers in (1, 2):
            db = build_database("pax")
            session = Session(db, SYSTEM_B, os_interference=None,
                              engine="vectorized", parallelism=workers,
                              parallel_backend="inline",
                              memory_budget_bytes=budget)
            results[workers] = session.execute(JOIN_QUERY).rows
        assert results[2] == results[1]

    def test_session_threads_budget_to_context(self):
        db = build_database("nsm")
        session = Session(db, SYSTEM_B, os_interference=None,
                          engine="vectorized",
                          memory_budget_bytes=BUILD_BYTES // 2)
        result = session.execute(JOIN_QUERY)
        assert session.context.memory_budget_bytes == BUILD_BYTES // 2
        assert session.context.io_stats["page_reads"] > 0
        assert result.rows[0]["count(*)"] > 0


# ---------------------------------------------------------------------------
# Hash-area resize on build-estimate overflow
# ---------------------------------------------------------------------------
def _drain_columns(op):
    cols = {}
    order = None
    for batch in op.batches():
        if order is None:
            order = list(batch.columns)
        for name, vector in batch.columns.items():
            cols.setdefault(name, []).extend(vector)
    return order, cols


def _make_join_op(db, ctx, build_row_estimate, batch_size=32):
    plan = join_plan_for(db)
    probe = build_vectorized_scan(plan.probe, db.catalog, ctx,
                                  [plan.probe_column], batch_size=batch_size)
    build = build_vectorized_scan(plan.build, db.catalog, ctx,
                                  [plan.build_column], batch_size=batch_size)
    return VecHashJoinOperator(probe, build, plan.probe_column,
                               plan.build_column, ctx,
                               build_row_estimate=build_row_estimate,
                               probe_row_estimate=R_ROWS,
                               batch_size=batch_size, build_row_bytes=100)


class TestHashAreaResize:
    """Observed build cardinality beyond the estimate doubles (and
    re-charges) the hash area instead of silently under-modelling it."""

    S_BIG = 40   # build side larger than the deliberate estimate of 16

    def _run(self, estimate, budget=None):
        db = build_database("nsm", s_rows=self.S_BIG)
        ctx = ExecutionContext(SimulatedProcessor(), SYSTEM_B, db.address_space)
        ctx.memory_budget_bytes = budget
        op = _make_join_op(db, ctx, build_row_estimate=estimate)
        order, cols = _drain_columns(op)
        return order, cols, ctx

    def test_underestimated_build_output_is_identical(self):
        order_small, cols_small, ctx_small = self._run(estimate=16)
        order_exact, cols_exact, ctx_exact = self._run(estimate=self.S_BIG)
        assert cols_small == cols_exact
        assert order_small == order_exact
        # The resize re-charged the rehash: strictly more build work.
        assert (ctx_small.op_invocations["hash_build"]
                > ctx_exact.op_invocations["hash_build"])

    def test_resize_under_memory_budget(self):
        budget = self.S_BIG * 100        # fully resident hybrid, tiny estimate
        order_small, cols_small, _ = self._run(estimate=16, budget=budget)
        order_exact, cols_exact, _ = self._run(estimate=self.S_BIG)
        assert cols_small == cols_exact
        assert order_small == order_exact


# ---------------------------------------------------------------------------
# partition_count policy decision
# ---------------------------------------------------------------------------
class TestPartitionCountPolicy:
    def test_no_budget_means_one_partition(self):
        assert plan_partition_count(10_000, 100, None) == 1

    def test_fitting_footprint_stays_resident(self):
        # 10 rows * 100 bytes * 1.2 fudge = 1200 <= 10000
        assert plan_partition_count(10, 100, 10_000) == 1

    def test_fudge_boundary(self):
        # 11 * 100 * 1.2 = 1320 exactly
        assert plan_partition_count(11, 100, 1320) == 1
        assert plan_partition_count(11, 100, 1319) == 2

    def test_grace_fanout_is_ceiling_division(self):
        # 100 * 100 * 1.2 = 12000 -> ceil(12000 / 5000) = 3
        assert plan_partition_count(100, 100, 5_000) == 3

    def test_fanout_clamps_to_max(self):
        assert plan_partition_count(1_000_000, 100, 1) == MAX_PARTITIONS

    def test_static_policy_trusts_the_estimate(self):
        stats = RuntimeStatsCollector()
        stats.observe_cardinality("card:S", 10_000)   # ignored by static
        assert AdaptivePolicy().partition_count("card:S", 10, 100, 2_000,
                                                stats) == 1

    def test_greedy_policy_prefers_the_observation(self):
        stats = RuntimeStatsCollector()
        greedy = GreedyRankPolicy()
        # Cold: no observation yet, fall back to the estimate.
        assert greedy.partition_count("card:S", 10, 100, 2_000, stats) == 1
        # Warm: the observed build is 20x the estimate.
        stats.observe_cardinality("card:S", 200)
        assert (greedy.partition_count("card:S", 10, 100, 2_000, stats)
                == plan_partition_count(200, 100, 2_000) == 12)


# ---------------------------------------------------------------------------
# Config-level validation of the knob
# ---------------------------------------------------------------------------
class TestBudgetValidation:
    def test_budget_requires_the_vectorized_engine(self):
        with pytest.raises(ValueError, match="vectorized"):
            ExecutionConfig(engine="tuple", memory_budget_bytes=1_000)

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            ExecutionConfig(engine="vectorized", memory_budget_bytes=0)

    def test_none_budget_is_always_valid(self):
        assert ExecutionConfig(engine="tuple").memory_budget_bytes is None
