"""Differential tests: native cache automaton vs. the pure-Python oracle.

``repro.hardware.cache`` routes ``access``/``access_strided``/``access_lines``
through the compiled ``_cachesim`` extension when it is available.  The
contract is total: the native automaton must leave the cache in the exact
same state (per-set MRU order, dirty sets) and produce the exact same
statistics (per-port accesses/misses, writebacks, at every level) as the
pure-Python machine, for any interleaving of operations.  These tests
replay random traces through both implementations and compare everything.

The pure-Python oracle is obtained by monkeypatching the module-level
``_NATIVE`` handle to ``None`` -- the same switch ``REPRO_NATIVE=0`` flips
at import time.
"""

import pytest

from hypothesis import given, settings, strategies as st

import repro.hardware.cache as cache_mod
from repro.hardware.cache import (Cache, CacheHierarchy, PORT_DATA_READ,
                                  PORT_DATA_WRITE, PORT_INSTRUCTION)
from repro.hardware.specs import CacheSpec, PENTIUM_II_XEON

pytestmark = pytest.mark.skipif(
    cache_mod._NATIVE is None,
    reason="native _cachesim extension unavailable; pure-Python path is the only path")


def tiny_hierarchy() -> CacheHierarchy:
    """A deliberately tiny hierarchy so random traces cause heavy eviction."""
    l1d = CacheSpec(name="l1d", size_bytes=512, line_bytes=32, associativity=2,
                    write_back=True)
    l1i = CacheSpec(name="l1i", size_bytes=512, line_bytes=32, associativity=2,
                    write_back=False)
    l2 = CacheSpec(name="l2", size_bytes=2048, line_bytes=32, associativity=4,
                   write_back=True)
    return CacheHierarchy(l1d, l1i, l2)


def full_state(cache: Cache):
    return (
        [list(lines) for lines in cache._sets],
        [set(dirty) for dirty in cache._dirty],
        dict(cache.stats.as_dict()),
    )


def hierarchy_state(hier: CacheHierarchy):
    return tuple(full_state(c) for c in (hier.l1d, hier.l1i, hier.l2))


# One trace step: (op, *args).  Addresses are kept small so sets collide.
_addr = st.integers(min_value=0, max_value=1 << 14)
_step = st.one_of(
    st.tuples(st.just("access"), _addr, st.sampled_from([PORT_DATA_READ, PORT_DATA_WRITE]),
              st.integers(min_value=1, max_value=64), st.booleans()),
    st.tuples(st.just("strided"), _addr, st.integers(min_value=1, max_value=96),
              st.integers(min_value=1, max_value=40),
              st.integers(min_value=1, max_value=16), st.booleans()),
    st.tuples(st.just("lines"), _addr, st.integers(min_value=1, max_value=4),
              st.integers(min_value=0, max_value=40)),
    st.tuples(st.just("invalidate"), st.floats(min_value=0.0, max_value=1.0),
              st.integers(min_value=1, max_value=3)),
)


def replay(hier: CacheHierarchy, trace) -> list:
    """Run a trace against a hierarchy, returning every miss count observed."""
    observed = []
    for step in trace:
        op = step[0]
        if op == "access":
            _, addr, port, size, write = step
            observed.append(hier.l1d.access(addr, port, size=size, write=write))
        elif op == "strided":
            _, addr, stride, count, size, write = step
            port = PORT_DATA_WRITE if write else PORT_DATA_READ
            observed.append(
                hier.l1d.access_strided(addr, stride, count, size, port, write=write))
        elif op == "lines":
            _, start, step_lines, count = step
            line = hier.l1i._line_bytes if hasattr(hier.l1i, "_line_bytes") else 32
            addrs = range(start, start + count * step_lines * 32, step_lines * 32)
            observed.append(hier.l1i.access_lines(addrs, PORT_INSTRUCTION))
        elif op == "invalidate":
            _, fraction, stride = step
            observed.append(hier.l1d.invalidate_fraction(fraction, stride=stride))
    return observed


class _pure_python:
    """Temporarily disable the native fast path (same switch as REPRO_NATIVE=0)."""

    def __enter__(self):
        self._saved = cache_mod._NATIVE
        cache_mod._NATIVE = None

    def __exit__(self, *exc):
        cache_mod._NATIVE = self._saved
        return False


@settings(max_examples=120, deadline=None)
@given(st.lists(_step, min_size=1, max_size=60))
def test_native_trace_matches_pure_python(trace):
    native_hier = tiny_hierarchy()
    native_misses = replay(native_hier, trace)
    native_state = hierarchy_state(native_hier)

    with _pure_python():
        oracle_hier = tiny_hierarchy()
        oracle_misses = replay(oracle_hier, trace)
        oracle_state = hierarchy_state(oracle_hier)

    assert native_misses == oracle_misses
    assert native_state == oracle_state


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=1 << 16),
       st.integers(min_value=1, max_value=128),
       st.integers(min_value=1, max_value=200),
       st.integers(min_value=1, max_value=32),
       st.booleans())
def test_native_strided_matches_elementwise(addr, stride, count, size, write):
    """Bulk strided access equals ``count`` individual accesses, natively too."""
    port = PORT_DATA_WRITE if write else PORT_DATA_READ
    bulk = tiny_hierarchy()
    bulk_misses = bulk.l1d.access_strided(addr, stride, count, size, port, write=write)

    with _pure_python():
        loop = tiny_hierarchy()
        loop_misses = sum(loop.l1d.access(addr + i * stride, port, size=size, write=write)
                          for i in range(count))

    assert bulk_misses == loop_misses
    assert hierarchy_state(bulk) == hierarchy_state(loop)


def test_native_pentium_profile_smoke():
    """The real Pentium II Xeon profile agrees natively vs. pure-Python."""
    def run(hier):
        for i in range(0, 4096, 8):
            hier.l1d.access(i * 13 % 65536, PORT_DATA_READ, size=8)
            if i % 3 == 0:
                hier.l1d.access(i * 7 % 65536, PORT_DATA_WRITE, size=8, write=True)
        hier.l1i.access_lines(range(0, 128 * 32, 32), PORT_INSTRUCTION)
        return hierarchy_state(hier)

    native = run(CacheHierarchy(PENTIUM_II_XEON.l1d, PENTIUM_II_XEON.l1i,
                                PENTIUM_II_XEON.l2))
    with _pure_python():
        oracle = run(CacheHierarchy(PENTIUM_II_XEON.l1d, PENTIUM_II_XEON.l1i,
                                    PENTIUM_II_XEON.l2))
    assert native == oracle
