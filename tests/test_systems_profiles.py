"""Tests for the system profiles of the four commercial DBMSs."""

import pytest

from repro.systems import (ALL_SYSTEMS, BASE_COSTS, OPERATION_NAMES, OperationCost,
                           ProfileError, SYSTEM_A, SYSTEM_B, SYSTEM_C, SYSTEM_D,
                           SystemProfile, system_by_key)
from repro.systems.profile import ACCESS_FIELDS_ONLY, ACCESS_FULL_RECORD, BranchSiteSpec
from repro.systems.vendors import oltp_variant


class TestProfileStructure:
    def test_four_systems_with_unique_keys(self):
        keys = [profile.key for profile in ALL_SYSTEMS]
        assert keys == ["A", "B", "C", "D"]

    def test_every_profile_defines_every_operation(self):
        for profile in ALL_SYSTEMS:
            for operation in OPERATION_NAMES:
                cost = profile.cost(operation)
                assert cost.instructions > 0
                assert cost.code_bytes > 0

    def test_system_by_key_lookup(self):
        assert system_by_key("b") is not None
        assert system_by_key("B").key == "B"
        with pytest.raises(KeyError):
            system_by_key("Z")

    def test_missing_operation_cost_rejected(self):
        costs = {name: BASE_COSTS[name] for name in OPERATION_NAMES if name != "scan_next"}
        with pytest.raises(ProfileError):
            SystemProfile(key="X", name="X", description="", uses_index_for_range_selection=True,
                          index_selectivity_threshold=0.2, join_algorithm="hash",
                          record_access_style=ACCESS_FULL_RECORD, workspace_bytes=1024,
                          costs=costs)

    def test_invalid_branch_kind_rejected(self):
        with pytest.raises(ProfileError):
            BranchSiteSpec(name="x", kind="banana")

    def test_negative_cost_rejected(self):
        with pytest.raises(ProfileError):
            OperationCost(instructions=-1, code_bytes=10)

    def test_unknown_cost_lookup_rejected(self):
        with pytest.raises(ProfileError):
            SYSTEM_A.cost("no_such_operation")


class TestPaperCharacterisation:
    """The observable properties the paper attributes to each system."""

    def test_system_a_does_not_use_the_index(self):
        assert SYSTEM_A.uses_index_for_range_selection is False
        assert all(profile.uses_index_for_range_selection
                   for profile in (SYSTEM_B, SYSTEM_C, SYSTEM_D))

    def test_system_a_has_the_shortest_scan_path(self):
        scan_instructions = {p.key: p.cost("scan_next").instructions for p in ALL_SYSTEMS}
        assert scan_instructions["A"] == min(scan_instructions.values())

    def test_system_b_touches_only_referenced_fields(self):
        assert SYSTEM_B.record_access_style == ACCESS_FIELDS_ONLY
        assert all(profile.record_access_style == ACCESS_FULL_RECORD
                   for profile in (SYSTEM_A, SYSTEM_C, SYSTEM_D))

    def test_system_b_working_set_exceeds_l1d_but_fits_l2(self):
        assert 16 * 1024 < SYSTEM_B.workspace_bytes < 512 * 1024

    def test_system_c_has_the_largest_cold_code_per_scan_record(self):
        cold = {p.key: p.cost("scan_next").cold_code_bytes for p in ALL_SYSTEMS}
        assert cold["C"] == max(cold.values())
        assert cold["A"] == min(cold.values())

    def test_system_d_join_path_is_the_heaviest(self):
        probe = {p.key: p.cost("hash_probe").instructions for p in ALL_SYSTEMS}
        assert probe["D"] == max(probe.values())

    def test_system_a_range_selection_fu_dominates_dep(self):
        cost = SYSTEM_A.cost("scan_next")
        assert cost.fu_stall_cycles > cost.dependency_stall_cycles
        for profile in (SYSTEM_B, SYSTEM_C, SYSTEM_D):
            other = profile.cost("scan_next")
            assert other.dependency_stall_cycles > other.fu_stall_cycles

    def test_cold_pools_fit_inside_l2(self):
        for profile in ALL_SYSTEMS:
            assert 16 * 1024 < profile.cold_code_pool_bytes <= 512 * 1024

    def test_branch_fraction_near_twenty_percent(self):
        for profile in ALL_SYSTEMS:
            assert 0.15 <= profile.branch_fraction <= 0.25


class TestProfileHelpers:
    def test_scaled_cost_scales_each_dimension(self):
        base = BASE_COSTS["scan_next"]
        scaled = base.scaled(path_factor=2.0, footprint_factor=0.5, stall_factor=3.0,
                             cold_factor=1.0)
        assert scaled.instructions == base.instructions * 2
        assert scaled.code_bytes == base.code_bytes // 2
        assert scaled.cold_code_bytes == base.cold_code_bytes
        assert scaled.dependency_stall_cycles == pytest.approx(base.dependency_stall_cycles * 3)

    def test_path_instructions_and_footprint(self):
        expected = (SYSTEM_B.cost("scan_next").instructions
                    + 0.1 * SYSTEM_B.cost("agg_update").instructions)
        assert SYSTEM_B.path_instructions({"scan_next": 1, "agg_update": 0.1}) == pytest.approx(expected)
        footprint = SYSTEM_B.path_code_bytes(("scan_next", "scan_next", "predicate"))
        assert footprint == (SYSTEM_B.cost("scan_next").code_bytes
                             + SYSTEM_B.cost("predicate").code_bytes)

    def test_with_overrides(self):
        variant = SYSTEM_C.with_overrides(workspace_bytes=1024)
        assert variant.workspace_bytes == 1024
        assert variant.costs == SYSTEM_C.costs

    def test_oltp_variant_enlarges_code_and_data_working_sets(self):
        for profile in ALL_SYSTEMS:
            oltp = oltp_variant(profile)
            assert oltp.cold_code_pool_bytes > 512 * 1024
            assert oltp.workspace_bytes > 1024 * 1024
            assert oltp.key == profile.key
            # Path lengths are inherited; resource-stall cycles are scaled up
            # (transaction management contention), instruction counts are not.
            for operation in OPERATION_NAMES:
                assert oltp.cost(operation).instructions == profile.cost(operation).instructions
                assert (oltp.cost(operation).dependency_stall_cycles
                        > profile.cost(operation).dependency_stall_cycles)
