"""Integration tests: the paper's qualitative claims at reduced (test) scale.

The full quantitative reproduction runs in ``benchmarks/`` at the calibrated
benchmark scale; these integration tests assert the claims that already hold
at a much smaller scale (so the unit-test suite stays fast) and exercise the
whole stack -- workload, planner, executor, simulated hardware, breakdown --
end to end.
"""

import pytest

from repro.engine import Session
from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.systems import ALL_SYSTEMS, SYSTEM_A, SYSTEM_B
from repro.workloads import MicroWorkloadConfig, TPCCConfig, TPCDConfig

#: A slightly larger scale than the unit tests (R = ~1,500 rows, 150 KB) so
#: that cache effects are visible but the suite stays quick.
INTEGRATION_SCALE = 1.0 / 800.0


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    config = ExperimentConfig(
        micro=MicroWorkloadConfig(scale=INTEGRATION_SCALE),
        tpcd=TPCDConfig(lineitem_rows=600, orders_rows=60, part_rows=30, supplier_rows=10),
        tpcc=TPCCConfig(scale=1 / 150, users=10),
        tpcc_transactions=12,
    )
    return ExperimentRunner(config)


class TestCrossSystemConsistency:
    def test_all_systems_compute_the_same_answers(self, runner):
        """The four 'vendors' differ in how they execute, never in what they return."""
        for kind in ("SRS", "SJ"):
            answers = []
            for profile in ALL_SYSTEMS:
                result = runner.micro_result(profile.key, kind)
                answers.append(result.scalar)
            assert all(answer == pytest.approx(answers[0]) for answer in answers)

    def test_indexed_and_sequential_selection_agree(self, runner):
        srs = runner.micro_result("B", "SRS")
        irs = runner.micro_result("B", "IRS")
        assert srs.scalar == pytest.approx(irs.scalar)

    def test_join_aggregate_matches_ground_truth(self, runner):
        workload = runner.micro_workload
        s_keys = {a1 for a1, _, _ in workload.generate_s_rows()}
        matching = [a3 for _, a2, a3 in workload.generate_r_rows() if a2 in s_keys]
        expected = sum(matching) / len(matching)
        assert runner.micro_result("C", "SJ").scalar == pytest.approx(expected)


class TestPaperQualitativeClaims:
    def test_computation_is_less_than_half_of_execution_time(self, runner):
        for profile in ALL_SYSTEMS:
            for kind in ("SRS", "IRS", "SJ"):
                result = runner.micro_result(profile.key, kind)
                if result is None:
                    continue
                assert result.breakdown.shares()["computation"] < 0.55, (
                    f"{profile.key}/{kind}: computation share unexpectedly high")

    def test_l1d_l2i_itlb_are_minor_memory_components(self, runner):
        for profile in ALL_SYSTEMS:
            result = runner.micro_result(profile.key, "SRS")
            memory = result.breakdown.memory_shares()
            # At this reduced scale the first (cold) pass over the code pool
            # contributes compulsory L2 instruction misses, so the TL2I share
            # of TM is visible here; the benchmark-scale run drives it to the
            # paper's "insignificant" level.
            assert memory["TL2I"] < 0.25
            assert memory["TITLB"] < 0.10
            # L1 D-cache stalls are insignificant relative to execution time
            # (at this reduced scale they can be a visible *fraction of TM*
            # only because TL2D shrinks with the dataset).
            l1d_of_total = (result.breakdown.components["TL1D"]
                            / result.breakdown.estimated_total)
            assert l1d_of_total < 0.08

    def test_l1d_miss_rate_stays_small(self, runner):
        """The paper reports ~2% L1 D-cache miss rates, never above 4%."""
        for profile in ALL_SYSTEMS:
            for kind in ("SRS", "SJ"):
                result = runner.micro_result(profile.key, kind)
                assert result.metrics.l1d_miss_rate < 0.05

    def test_system_a_retires_fewest_instructions_per_record_on_srs(self, runner):
        per_record = {p.key: runner.micro_result(p.key, "SRS").metrics.instructions_per_record
                      for p in ALL_SYSTEMS}
        assert per_record["A"] == min(per_record.values())

    def test_system_a_has_highest_resource_stall_share(self, runner):
        shares = {p.key: runner.micro_result(p.key, "SRS").breakdown.shares()["resource"]
                  for p in ALL_SYSTEMS}
        assert shares["A"] == max(shares.values())

    def test_system_b_has_fewest_l2_data_misses_per_record(self, runner):
        misses = {p.key: runner.micro_result(p.key, "SRS").metrics.l2_data_misses_per_record
                  for p in ALL_SYSTEMS}
        assert misses["B"] == min(misses.values())

    def test_branch_fraction_is_about_twenty_percent(self, runner):
        for profile in ALL_SYSTEMS:
            result = runner.micro_result(profile.key, "SRS")
            assert 0.15 <= result.metrics.branch_fraction <= 0.25

    def test_btb_misses_about_half_the_time(self, runner):
        for profile in ALL_SYSTEMS:
            result = runner.micro_result(profile.key, "SRS")
            assert 0.35 <= result.metrics.btb_miss_rate <= 0.70

    def test_workload_is_latency_bound_not_bandwidth_bound(self, runner):
        for profile in ALL_SYSTEMS:
            result = runner.micro_result(profile.key, "SRS")
            assert result.metrics.memory_bandwidth_utilisation < 1.0 / 3.0

    def test_branch_and_l1i_stalls_rise_with_selectivity(self, runner):
        series = runner.selectivity_series("D", "SRS", selectivities=(0.0, 0.5))
        low = series[0.0].breakdown.component_shares()
        high = series[0.5].breakdown.component_shares()
        assert high["TB"] > low["TB"]

    def test_tpcc_has_higher_cpi_than_the_microbenchmark(self, runner):
        srs_cpi = runner.micro_result("B", "SRS").metrics.cpi
        tpcc_cpi = runner.tpcc_result("B").metrics.cpi
        assert tpcc_cpi > srs_cpi

    def test_tpcc_memory_stalls_dominated_by_l2(self, runner):
        tpcc = runner.tpcc_result("B")
        memory = tpcc.breakdown.memory_shares()
        assert memory["TL2D"] + memory["TL2I"] > memory["TL1D"] + memory["TL1I"]


class TestMeasurementConsistency:
    def test_counter_snapshot_is_reproducible_for_identical_runs(self, runner):
        """Two fresh sessions measuring the same query agree on the counters.

        The instruction-stream and branch counters are exactly reproducible;
        the cache-dependent counters (and therefore the cycle total) may vary
        marginally because each session lays its code and workspace out at
        fresh addresses in the shared simulated address space, which perturbs
        conflict misses slightly.
        """
        workload = runner.micro_workload
        database = runner.micro_database
        query = workload.sequential_range_selection(0.10)
        first = Session(database, SYSTEM_B, os_interference=None).execute(query, warmup_runs=0)
        second = Session(database, SYSTEM_B, os_interference=None).execute(query, warmup_runs=0)
        for event in ("INST_RETIRED", "UOPS_RETIRED", "DATA_MEM_REFS", "BR_INST_RETIRED",
                      "RECORDS_PROCESSED", "IFU_IFETCH"):
            assert first.counters.get(event) == second.counters.get(event), event
        assert first.counters.get("CPU_CLK_UNHALTED") == pytest.approx(
            second.counters.get("CPU_CLK_UNHALTED"), rel=0.01)

    def test_breakdown_components_bound_measured_cycles(self, runner):
        """Component estimates are upper bounds: their sum >= measured cycles."""
        for profile in (SYSTEM_A, SYSTEM_B):
            result = runner.micro_result(profile.key, "SRS")
            assert result.breakdown.estimated_total >= result.breakdown.total_cycles

    def test_instructions_per_record_close_to_profile_prediction(self, runner):
        """Simulated instruction counts agree with the analytical path model."""
        profile = SYSTEM_B
        result = runner.micro_result("B", "SRS")
        workload = runner.micro_workload
        rows = workload.config.r_rows
        selected = workload.expected_selected_rows(0.10)
        records_per_page = runner.micro_database.table("R").heap.records_per_page
        predicted = profile.path_instructions({
            "scan_next": 1.0,
            "predicate": 1.0,
            "agg_update": selected / rows,
            "page_boundary": 1.0 / records_per_page,
        })
        measured = result.metrics.instructions_per_record
        assert measured == pytest.approx(predicted, rel=0.15)
