"""The memory-budgeted hash join: one query, shrinking working memory.

The microbenchmark's equijoin (``select avg(R.a3) from R, S where
R.a2 = S.a1``) builds its hash table on S.  ``memory_budget_bytes`` caps
the vectorized join's working memory: when the build side no longer fits,
the join hash-partitions both inputs (grace/hybrid), keeps as many
partitions resident as the budget allows, and streams the rest through a
budget-sized buffer pool whose evictions and reloads are charged to the
simulated processor as page transfers -- the I/O traffic the paper's
configurations were deliberately sized to avoid.

The sweep below runs the identical query under budgets of infinity, then
2x / 1x / 0.5x / 0.1x the build side's byte footprint.  Two things to
watch:

* the *rows never change* -- the spilling join is row-, order- and
  column-identical to the in-memory join at every budget (asserted here
  and, adversarially, in ``tests/test_spill_join.py``);
* the charged page reads/writes appear once the budget really binds, and
  the simulated cycles grow with the spill traffic.

Run with::

    PYTHONPATH=src python examples/spill_join.py
"""

from repro.engine import Session
from repro.systems import SYSTEM_B
from repro.workloads.micro import MicroWorkload


def main() -> None:
    workload = MicroWorkload()  # default scale: R = 6,000 rows, S = 200
    query = workload.over_budget_join()
    build_bytes = workload.config.s_bytes
    print(f"build side: {workload.config.s_rows} rows x "
          f"{workload.config.record_size} bytes = {build_bytes:,} bytes\n")

    budgets = [("inf", None),
               ("2.0x", 2 * build_bytes),
               ("1.0x", build_bytes),
               ("0.5x", build_bytes // 2),
               ("0.1x", build_bytes // 10)]

    reference_rows = None
    print(f"{'budget':>8} {'bytes':>10} {'cycles':>12} "
          f"{'page reads':>11} {'page writes':>12}")
    for label, budget in budgets:
        database = workload.build()
        session = Session(database, SYSTEM_B, os_interference=None,
                          engine="vectorized", memory_budget_bytes=budget)
        result = session.execute(query)
        io = session.context.io_stats
        print(f"{label:>8} {budget if budget is not None else '-':>10} "
              f"{result.counters.get('CPU_CLK_UNHALTED'):>12,} "
              f"{io['page_reads']:>11,} {io['page_writes']:>12,}")
        if reference_rows is None:
            reference_rows = result.rows
        else:
            assert result.rows == reference_rows, "spilling changed the result!"
        session.close()

    print("\nevery budget produced identical rows:", reference_rows)


if __name__ == "__main__":
    main()
