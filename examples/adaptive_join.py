"""Runtime join-side selection on a planner-wrong hash join.

The microbenchmark's equijoin (``select avg(R.a3) from R, S where
R.a2 = S.a1``) joins R against S, which is 30x smaller -- so a planner with
healthy statistics builds the hash table on S and probes with R.
:meth:`~repro.workloads.micro.MicroWorkload.skewed_join` pins the build
side to R instead, modelling stale statistics: the static plan hashes all
of R into a hash area many times the 16 KB L1 D-cache and probes it with a
handful of S rows.

With ``adaptive_joins=True`` the vectorized hash join consults the
adaptivity policy between build batches.  The ``greedy`` policy watches the
observed build cardinality stream past the probe-side expectation and
flips: S becomes the hash side (L1D-resident), R is streamed through it,
and the matched pairs are recombined into exactly the static plan's rows --
same order, same column order.  ``static`` is the control arm: identical
charging machinery, planner-frozen decision.

Both modes are measured with one warm-up execution (the paper's warm-unit
discipline).  The warm-up also populates the collector's cardinality
observations, so greedy flips *before* ingesting a single build batch --
no build work is wasted.

Run with::

    PYTHONPATH=src python examples/adaptive_join.py
"""

from repro.engine import Session
from repro.query.plans import describe_plan
from repro.systems import SYSTEM_B
from repro.workloads.micro import MicroWorkload


def main() -> None:
    workload = MicroWorkload()  # default scale: R = 6,000 rows, S = 200
    query = workload.skewed_join()

    results = {}
    for mode in ("static", "greedy"):
        database = workload.build()
        session = Session(database, SYSTEM_B, os_interference=None,
                          engine="vectorized", adaptivity=mode,
                          adaptive_joins=True)
        if mode == "static":
            print("planner-wrong hash join (build side pinned to R by "
                  "stale statistics):\n")
            print(session.explain(query))
            print()
        result = session.execute(query, warmup_runs=1)
        results[mode] = result
        if mode == "greedy":
            collector = session.adaptive.collector
            print("observed cardinalities after the warm-up execution:")
            for key in ("card:R", "card:S"):
                print(f"  {key}: {collector.cardinality(key):,.0f} rows")
            print("  -> greedy flips: build on S, stream R through an "
                  "L1D-resident hash table\n")
        session.close()

    static, greedy = results["static"], results["greedy"]
    assert static.rows == greedy.rows
    print(f"identical result rows: {greedy.rows}")
    print(f"{'':24s}{'static':>14s}{'adaptive':>14s}{'reduction':>11s}")
    for label, value in (
            ("total cycles", lambda r: r.counters.get("CPU_CLK_UNHALTED")),
            ("instructions", lambda r: r.counters.get("INST_RETIRED")),
            ("branch mispredictions",
             lambda r: r.counters.get("BR_MISS_PRED_RETIRED")),
            ("L1D stall cycles", lambda r: int(r.breakdown.components["TL1D"])),
    ):
        before, after = value(static), value(greedy)
        print(f"{label:<24s}{before:>14,}{after:>14,}"
              f"{1 - after / before:>10.1%}")


if __name__ == "__main__":
    main()
