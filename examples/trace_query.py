"""Trace one query and see where its simulated cycles go, per operator.

``tracing="spans"`` brackets every operator ``next()`` boundary and every
planner/setup phase in a *counter span* -- a snapshot delta of the
simulated cycle, cache, TLB and branch banks -- and assembles the spans
into a trace tree on ``QueryResult.trace``.  Each node carries the
paper's execution-time breakdown (computation / memory / branch /
resource) applied to that node's *self* delta alone, so "where does time
go?" gets a per-operator answer instead of one whole-query number.

Two contracts to watch (both differentially asserted in
``tests/test_observability.py``):

* tracing changes **zero** simulated counts -- the traced run below
  reports the exact cycles an untraced run reports;
* the root span equals the finalized whole-query counters, and per-node
  self deltas sum back to the root for every additive event.

Run with::

    PYTHONPATH=src python examples/trace_query.py
"""

from repro.engine import Session
from repro.observability import render_trace
from repro.systems import SYSTEM_B
from repro.workloads.micro import MicroWorkload, MicroWorkloadConfig


def main() -> None:
    workload = MicroWorkload(MicroWorkloadConfig(scale=0.01))
    query = workload.sequential_join()

    # Untraced reference: the identity target.
    database = workload.build()
    plain = Session(database, SYSTEM_B, os_interference=None,
                    engine="vectorized")
    reference = plain.execute(query)
    plain.close()

    # Same query, traced.
    database = workload.build()
    session = Session(database, SYSTEM_B, os_interference=None,
                      engine="vectorized", tracing="spans")
    result = session.execute(query)

    cycles = result.counters.get("CPU_CLK_UNHALTED")
    assert cycles == reference.counters.get("CPU_CLK_UNHALTED"), \
        "tracing perturbed the simulation!"
    assert result.rows == reference.rows

    print(f"join result: {result.rows}  ({cycles:,} simulated cycles, "
          "identical to the untraced run)\n")
    print(render_trace(result.trace, session.spec,
                       session.context.processor))

    root = result.trace.inclusive_counters(session.context.processor)
    assert root.as_dict() == result.counters.as_dict(), \
        "root span diverged from the finalized counters!"
    print("root span == finalized whole-query counters, key by key")
    session.close()


if __name__ == "__main__":
    main()
