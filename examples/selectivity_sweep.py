"""Sweep the selectivity of the sequential range selection (Figure 5.4 right).

Runs System D's sequential range selection at the paper's selectivity points
(0%, 1%, 5%, 10%, 50%, 100%) and prints how the branch-misprediction stall
time and the L1 instruction-cache stall time move together as a fraction of
execution time.

Run with::

    python examples/selectivity_sweep.py
"""

from repro import MicroWorkload, MicroWorkloadConfig, Session, system_by_key
from repro.analysis.report import format_table
from repro.workloads.sweeps import SELECTIVITY_POINTS


def main() -> None:
    workload = MicroWorkload(MicroWorkloadConfig(scale=1 / 400))
    database = workload.build()
    profile = system_by_key("D")

    columns = {}
    for selectivity in SELECTIVITY_POINTS:
        session = Session(database, profile)
        result = session.execute(workload.sequential_range_selection(selectivity),
                                 warmup_runs=0)
        shares = result.breakdown.component_shares()
        columns[f"{selectivity:.0%}"] = {
            "Branch mispred. stalls": shares["TB"],
            "L1 I-cache stalls": shares["TL1I"],
            "L2 D-cache stalls": shares["TL2D"],
        }
        print(f"selectivity {selectivity:>4.0%}: "
              f"selected {result.counters.get('RECORDS_PROCESSED'):,} records scanned, "
              f"CPI {result.metrics.cpi:.2f}")

    print()
    print(format_table(
        "System D, sequential selection: stall shares vs selectivity",
        ["Branch mispred. stalls", "L1 I-cache stalls", "L2 D-cache stalls"],
        list(columns.keys()), columns))


if __name__ == "__main__":
    main()
