"""Sweep the selectivity of the sequential range selection (Figure 5.4 right),
then show what runtime selectivity knowledge buys: adaptive conjunct ordering.

Part 1 runs System D's sequential range selection at the paper's selectivity
points (0%, 1%, 5%, 10%, 50%, 100%) and prints how the branch-misprediction
stall time and the L1 instruction-cache stall time move together as a
fraction of execution time.

Part 2 is a worked example of the micro-adaptive subsystem on the skewed
3-conjunct selection: the static (planner) order evaluates a ~90%-pass
conjunct, then a 50/50 coin-flip conjunct, then the ~5%-selective one; the
greedy policy observes per-batch selectivities and flips the order, so the
unpredictable branch runs over ~5% of the rows instead of ~90%.

Run with::

    python examples/selectivity_sweep.py
"""

from repro import MicroWorkload, MicroWorkloadConfig, Session, system_by_key
from repro.adaptive import GreedyRankPolicy, conjunct_key, flatten_conjuncts
from repro.analysis.report import format_table
from repro.systems import SYSTEM_B
from repro.workloads.sweeps import SELECTIVITY_POINTS


def adaptivity_example() -> None:
    workload = MicroWorkload(MicroWorkloadConfig(scale=1 / 400))
    query = workload.skewed_conjunct_selection()
    conjuncts = flatten_conjuncts(query.predicate)
    print("skewed 3-conjunct selection, static (planner) order:")
    for position, conjunct in enumerate(conjuncts):
        print(f"  {position}: {conjunct_key(conjunct)}")

    results = {}
    for mode in ("static", "greedy"):
        database = workload.build(include_s=False)
        session = Session(database, SYSTEM_B, os_interference=None,
                          engine="vectorized", adaptivity=mode)
        result = session.execute(query, warmup_runs=0)
        results[mode] = result
        if mode == "greedy":
            collector = session.adaptive.collector
            keys = [conjunct_key(c) for c in conjuncts]
            costs = [max(c.comparison_count(), 1) for c in conjuncts]
            learned = GreedyRankPolicy().order(keys, costs, collector)
            print("\nobserved selectivities -> greedy order "
                  f"{learned} (rows evaluated per conjunct):")
            for position in learned:
                stats = collector.conjuncts[keys[position]]
                print(f"  {position}: selectivity {stats.selectivity:.3f}, "
                      f"rows in {stats.rows_in:,}, "
                      f"mispredictions {stats.mispredictions:,}")
        session.close()

    static, greedy = results["static"], results["greedy"]
    assert static.rows == greedy.rows
    print(f"\nidentical result rows: {greedy.rows}")
    for label, event in (("branch mispredictions", "BR_MISS_PRED_RETIRED"),
                         ("total cycles", "CPU_CLK_UNHALTED")):
        before = static.counters.get(event)
        after = greedy.counters.get(event)
        print(f"{label}: static {before:,} -> greedy {after:,} "
              f"({1 - after / before:.1%} reduction)")


def main() -> None:
    workload = MicroWorkload(MicroWorkloadConfig(scale=1 / 400))
    database = workload.build()
    profile = system_by_key("D")

    columns = {}
    for selectivity in SELECTIVITY_POINTS:
        session = Session(database, profile)
        result = session.execute(workload.sequential_range_selection(selectivity),
                                 warmup_runs=0)
        shares = result.breakdown.component_shares()
        columns[f"{selectivity:.0%}"] = {
            "Branch mispred. stalls": shares["TB"],
            "L1 I-cache stalls": shares["TL1I"],
            "L2 D-cache stalls": shares["TL2D"],
        }
        print(f"selectivity {selectivity:>4.0%}: "
              f"selected {result.counters.get('RECORDS_PROCESSED'):,} records scanned, "
              f"CPI {result.metrics.cpi:.2f}")

    print()
    print(format_table(
        "System D, sequential selection: stall shares vs selectivity",
        ["Branch mispred. stalls", "L1 I-cache stalls", "L2 D-cache stalls"],
        list(columns.keys()), columns))
    print()
    adaptivity_example()


if __name__ == "__main__":
    main()
