"""The kernel backends: one query, two data planes, identical counts.

The vectorized engine's inner loops -- predicate masks, selection-vector
compaction, gathers, hash-join bucket hashing, aggregate folds -- live in
``repro.execution.kernels`` behind a small ``Kernels`` interface with two
interchangeable backends:

* ``python`` -- the original pure-Python loops, zero dependencies, and the
  oracle every other backend is differenced against;
* ``array`` -- the same contracts on numpy (the optional ``fast`` extra),
  with per-call fallbacks wherever vectorization could diverge (``None``
  values, magnitudes past 2**53, non-integer hash keys).

The backends sit *behind the count-identity wall*: kernels only ever see
plain data, never the simulated processor, so every cache visit, TLB walk
and branch the model charges happens in exactly the same place regardless
of backend.  Same rows, same column order, byte-identical simulated
counters -- wall clock is the only thing allowed to differ.

Which backend wins on wall clock depends on where the time goes.  With
the charging plane in C (DESIGN.md, "Kernels behind the count-identity
wall") the microbenchmark's batches are small and its kernels light, so
numpy's fixed per-call list-to-array conversion cost often outweighs its
per-element win and ``python`` comes out ahead; the array backend earns
its keep as batches grow and kernels get heavier.  The grid benchmark
(``scripts/run_bench.py``) records the resolved backend per cell and
gates both backends cycle-identical on every run.

This example runs the microbenchmark's sequential range selection and its
equijoin under ``kernel_backend="python"`` and ``"array"`` at two batch
sizes and prints the invariant that actually matters: identical cycles
every time, whichever way the wall clock goes.

Run with::

    PYTHONPATH=src python examples/kernel_speedup.py
"""

import time

from repro.engine import Session
from repro.execution.kernels import array_kernels_available
from repro.systems import SYSTEM_B
from repro.workloads.micro import MicroWorkload


def run(workload, query, backend, batch_size):
    database = workload.build()
    session = Session(database, SYSTEM_B, os_interference=None,
                      engine="vectorized", kernel_backend=backend,
                      batch_size=batch_size)
    start = time.perf_counter()
    result = session.execute(query)
    wall = time.perf_counter() - start
    return result, wall


def main() -> None:
    if not array_kernels_available():
        print("numpy is not installed; install the fast extra "
              "(pip install -e .[fast]) to compare backends.")
        return

    workload = MicroWorkload()  # default scale: R = 6,000 rows, S = 200
    queries = [("10% sequential selection",
                workload.sequential_range_selection()),
               ("equijoin R |X| S", workload.over_budget_join())]

    print(f"{'query':>24} {'batch':>6} {'backend':>8} {'cycles':>12} "
          f"{'wall':>9}  array/python")
    for name, query in queries:
        for batch_size in (256, 4096):
            results = {}
            for backend in ("python", "array"):
                result, wall = run(workload, query, backend, batch_size)
                results[backend] = (result, wall)
                ratio = ""
                if backend == "array":
                    ratio = f"{results['python'][1] / wall:>6.2f}x"
                print(f"{name:>24} {batch_size:>6} {backend:>8} "
                      f"{result.counters.get('CPU_CLK_UNHALTED'):>12,} "
                      f"{wall:>8.3f}s {ratio}")
            python_result = results["python"][0]
            array_result = results["array"][0]
            assert array_result.rows == python_result.rows, \
                "backends returned different rows!"
            assert (array_result.counters.as_dict()
                    == python_result.counters.as_dict()), \
                "backends charged different simulated counts!"
        print(f"{'':>24} rows and simulated counters identical\n")


if __name__ == "__main__":
    main()
