"""Drive the emon-style measurement methodology end to end.

The paper measured 74 event types two at a time with Intel's ``emon`` tool,
using units of ten queries and repeated runs with a <5% standard deviation
target.  This example reproduces that workflow against the simulated
processor: it multiplexes the breakdown's event list pairwise over repeated
units, checks the confidence of every measurement, and then feeds the
collected means into the Table 4.2 formulae to print an execution-time
breakdown -- exactly the path the paper's numbers travelled.

Run with::

    python examples/emon_methodology.py
"""

from repro import MicroWorkload, MicroWorkloadConfig, Session, SYSTEM_C
from repro.analysis import ExecutionBreakdown
from repro.analysis.report import format_key_values
from repro.emon import Emon, default_event_list
from repro.hardware import EventCounters


def main() -> None:
    workload = MicroWorkload(MicroWorkloadConfig(scale=1 / 1200))
    database = workload.build(include_s=False)
    query = workload.sequential_range_selection(0.10)

    def unit() -> EventCounters:
        """One measurement unit: a fresh session runs the query batch."""
        session = Session(database, SYSTEM_C)
        return session.execute(query, warmup_runs=1, queries_per_unit=3).counters

    emon = Emon(unit, repetitions=3, max_relative_std_dev=0.05)
    events = default_event_list()
    print(f"Measuring {len(events)} event types, two counters at a time, "
          f"{emon.repetitions} repetitions each ...")
    measurements = emon.collect(events)

    noisy = emon.check_confidence(measurements)
    print(f"Events above the 5% relative standard deviation target: {noisy or 'none'}\n")

    means = {name.split(":")[0]: measurement.mean
             for name, measurement in measurements.items()}
    counters = EventCounters.from_dict({event: int(round(value))
                                        for event, value in means.items()})
    breakdown = ExecutionBreakdown.from_counters(counters, label="emon-derived")

    print(format_key_values("Execution time breakdown from emon-style measurement", {
        "total cycles": breakdown.total_cycles,
        "TC (computation)": breakdown.components["TC"],
        "TM (memory stalls)": breakdown.memory,
        "  TL1I": breakdown.components["TL1I"],
        "  TL2D": breakdown.components["TL2D"],
        "TB (branch mispredictions)": breakdown.branch,
        "TR (resource stalls)": breakdown.resource,
        "stall share of execution time": breakdown.stall / breakdown.estimated_total,
    }))


if __name__ == "__main__":
    main()
