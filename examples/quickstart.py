"""Quickstart: where does the time go for one query on one system?

Builds a scaled-down version of the paper's relation R, runs the 10%
sequential range selection on System B's profile, and prints the execution
time breakdown (Figure 5.1 style), the memory-stall breakdown (Figure 5.2
style) and the headline rate metrics.

Run with::

    python examples/quickstart.py
"""

from repro import MicroWorkload, MicroWorkloadConfig, Session, SYSTEM_B
from repro.analysis.report import format_key_values, format_table


def main() -> None:
    # 1/400 of the paper's 1.2M-row relation keeps this script snappy while
    # still overflowing the 16 KB L1 caches.
    workload = MicroWorkload(MicroWorkloadConfig(scale=1 / 400))
    database = workload.build()
    workload.create_selection_index(database)
    print(f"Loaded R with {database.row_count('R'):,} rows "
          f"({database.table('R').heap.data_bytes() / 1024:.0f} KB), "
          f"S with {database.row_count('S'):,} rows\n")

    session = Session(database, SYSTEM_B)
    query = workload.sequential_range_selection(selectivity=0.10)
    print("Plan:")
    print(session.explain(query), "\n")

    result = session.execute(query, warmup_runs=1)
    print(f"avg(a3) = {result.scalar:.2f} "
          f"(expected {workload.expected_average(0.10):.2f})\n")

    shares = result.breakdown.shares()
    print(format_table(
        "Execution time breakdown (System B, 10% sequential selection)",
        ["Computation", "Memory stalls", "Branch mispredictions", "Resource stalls"],
        ["share"],
        {"share": {"Computation": shares["computation"],
                   "Memory stalls": shares["memory"],
                   "Branch mispredictions": shares["branch"],
                   "Resource stalls": shares["resource"]}}))
    print()

    memory = result.breakdown.memory_shares()
    print(format_table(
        "Memory stall breakdown",
        ["TL1D", "TL1I", "TL2D", "TL2I", "TITLB"], ["share"],
        {"share": memory}))
    print()

    metrics = result.metrics
    print(format_key_values("Rate metrics", {
        "CPI": metrics.cpi,
        "instructions / record": metrics.instructions_per_record,
        "L1D miss rate": metrics.l1d_miss_rate,
        "L2 data miss rate": metrics.l2_data_miss_rate,
        "branch misprediction rate": metrics.branch_misprediction_rate,
        "BTB miss rate": metrics.btb_miss_rate,
        "memory bandwidth utilisation": metrics.memory_bandwidth_utilisation,
    }))


if __name__ == "__main__":
    main()
