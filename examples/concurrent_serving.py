"""Concurrent query serving: shared scans plus plan & result caching.

A deterministic open-loop arrival trace (exponential interarrival gaps,
mixed query classes drawn from a seeded RNG) is served twice against one
shared warmed database build:

* **serial** — ``max_concurrency=1`` with every serving layer off: each
  query runs back to back in its own fresh measurement session, the
  baseline a paper-era single-user system would measure;
* **serving** — ``max_concurrency=8`` with the plan cache, the semantic
  result cache and shared scans all on: repeated query classes skip the
  planner, repeats over unchanged tables answer from the result cache for
  a small charged probe cost, and same-table scans within an admission
  round ride one recorded morsel stream.

Rows are identical between the two runs for every query, and per-query
simulated counts are identical too except on result-cache hits (which
charge the modelled probe instead of execution — that is the point).
Latency is measured under the driver's virtual clock, so the percentiles
include queueing delay exactly as a real single-server queue would.

Run with::

    PYTHONPATH=src python examples/concurrent_serving.py
"""

from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.workloads import (MicroWorkloadConfig, ServingTraceConfig,
                             build_trace, run_open_loop)


def main() -> None:
    runner = ExperimentRunner(ExperimentConfig(
        micro=MicroWorkloadConfig(),  # default scale: R = 6,000 rows
        os_interference=False))
    trace = build_trace(runner.micro_workload,
                        ServingTraceConfig(queries=48))
    classes = sorted({item.class_key for item in trace})
    print(f"open-loop trace: {len(trace)} arrivals over "
          f"{trace[-1].arrival_seconds * 1000:.1f} virtual ms, "
          f"classes {', '.join(classes)}\n")

    reports = {}
    for name, kwargs in (
            ("serial", dict(max_concurrency=1, plan_cache=False,
                            result_cache=False, shared_scans=False)),
            ("serving", dict(max_concurrency=8))):
        server = runner.serving_server("nsm", **kwargs)
        report = run_open_loop(server, trace)
        reports[name] = report
        stats = report.stats
        print(f"{name:>8}: {report.throughput_qps:8.1f} q/s, "
              f"p50 {report.latency_p50 * 1000:7.1f} ms, "
              f"p95 {report.latency_p95 * 1000:7.1f} ms, "
              f"p99 {report.latency_p99 * 1000:7.1f} ms "
              f"({report.rounds} rounds)")
        print(f"{'':>8}  {report.total_cycles:,} total simulated cycles, "
              f"{stats['result_cache_hits']} result-cache hits, "
              f"{stats['plan_cache_hits']} plan-cache hits, "
              f"{stats['shared_scan_reuses']} shared-scan reuses")

    serial, serving = reports["serial"], reports["serving"]
    assert serving.total_rows == serial.total_rows  # rows never change
    print(f"\nthroughput: {serving.throughput_qps / serial.throughput_qps:.1f}x "
          f"serial (identical rows; "
          f"{1 - serving.total_cycles / serial.total_cycles:.0%} of the "
          f"trace's simulated cycles removed by the result cache)")


if __name__ == "__main__":
    main()
