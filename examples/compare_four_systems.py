"""Compare the four commercial DBMSs on the three microbenchmark queries.

Reproduces, at example scale, the core of the paper's Figures 5.1-5.3: for
each of Systems A-D it runs the sequential range selection, the indexed range
selection (where the optimiser accepts the index -- System A does not) and
the join, then prints the per-system execution time breakdown, memory stall
split and instructions per record side by side.

Run with::

    python examples/compare_four_systems.py
"""

from repro import ALL_SYSTEMS, MicroWorkload, MicroWorkloadConfig, Session
from repro.analysis.report import format_table


def measure(workload, database, profile, query, warmup_query=None):
    session = Session(database, profile)
    return session.execute(query, warmup_runs=1, warmup_query=warmup_query)


def main() -> None:
    workload = MicroWorkload(MicroWorkloadConfig(scale=1 / 400))
    database = workload.build()
    workload.create_selection_index(database)

    queries = {
        "SRS": lambda: workload.sequential_range_selection(0.10),
        "IRS": lambda: workload.indexed_range_selection(0.10),
        "SJ": lambda: workload.sequential_join(),
    }

    for kind, build_query in queries.items():
        breakdown_by_system = {}
        per_record = {}
        for profile in ALL_SYSTEMS:
            if kind == "IRS" and not profile.uses_index_for_range_selection:
                continue
            warmup = (workload.indexed_range_selection(0.10, offset=1.0)
                      if kind == "IRS" else None)
            result = measure(workload, database, profile, build_query(), warmup)
            shares = result.breakdown.shares()
            breakdown_by_system[profile.key] = {
                "Computation": shares["computation"],
                "Memory stalls": shares["memory"],
                "Branch mispred.": shares["branch"],
                "Resource stalls": shares["resource"],
            }
            per_record[profile.key] = {
                "instructions/record": result.metrics.instructions_per_record}
        print(format_table(
            f"{kind}: query execution time breakdown",
            ["Computation", "Memory stalls", "Branch mispred.", "Resource stalls"],
            list(breakdown_by_system.keys()), breakdown_by_system))
        print()
        print(format_table(
            f"{kind}: instructions retired per record",
            ["instructions/record"], list(per_record.keys()), per_record,
            formatter=lambda v: f"{v:,.0f}"))
        print("\n")


if __name__ == "__main__":
    main()
