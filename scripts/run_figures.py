#!/usr/bin/env python
"""Regenerate the paper's breakdown figures, optionally per page layout.

The paper's systems all stored records NSM-style, so the reproduced
Figures 5.1/5.2 default to NSM.  ``--layouts nsm pax`` re-measures the
breakdown grid under each page layout through the warmed-build grid
machinery (one shared database build per layout, address space rolled back
to the post-build checkpoint before every session), which is what makes a
full PAX breakdown affordable -- the "PAX everywhere" slice of ROADMAP.md.

``--figures adaptivity`` additionally prints the adaptive
conjunct-reordering experiment (static vs greedy vs epsilon orderings of
the skewed 3-conjunct selection, measured on the simulated branch unit),
and ``--figures adaptive-joins`` the adaptive join-side selection
experiment (the skewed build-side misestimate, measured on the memory
hierarchy).

Usage::

    PYTHONPATH=src python scripts/run_figures.py
    PYTHONPATH=src python scripts/run_figures.py --layouts nsm pax
    PYTHONPATH=src python scripts/run_figures.py --figures 5.2 adaptivity \
        --layouts pax --scale 0.25
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.experiments.figures import (figure_5_1, figure_5_2,
                                       figure_adaptive_joins, figure_adaptivity)
from repro.workloads.micro import MicroWorkloadConfig

FIGURES = ("5.1", "5.2", "adaptivity", "adaptive-joins")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--figures", nargs="+", default=["5.1", "5.2"],
                        choices=FIGURES,
                        help="which figures to regenerate (default: 5.1 5.2)")
    parser.add_argument("--layouts", nargs="+", default=None,
                        choices=("nsm", "pax"),
                        help="page layouts to measure under (default: the "
                             "paper's original NSM discipline)")
    parser.add_argument("--scale", type=float, default=None,
                        help="microbenchmark scale factor override")
    args = parser.parse_args()

    config = (ExperimentConfig() if args.scale is None else
              ExperimentConfig(micro=MicroWorkloadConfig(scale=args.scale)))
    runner = ExperimentRunner(config)

    start = time.perf_counter()
    for name in args.figures:
        if name == "5.1":
            result = figure_5_1(runner, layouts=args.layouts)
        elif name == "5.2":
            result = figure_5_2(runner, layouts=args.layouts)
        elif name == "adaptivity":
            result = figure_adaptivity(
                runner, layouts=tuple(args.layouts or ("nsm", "pax")))
        else:
            result = figure_adaptive_joins(
                runner, layouts=tuple(args.layouts or ("nsm", "pax")))
        print(result.text)
        print()
    print(f"({time.perf_counter() - start:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
