#!/usr/bin/env bash
# Tier-1 verification: the exact command from ROADMAP.md, runnable from any
# directory.  Extra pytest arguments pass through, e.g.
#   scripts/run_tier1.sh -m "not slow"      # skip experiment-scale benchmarks
#   scripts/run_tier1.sh tests/             # unit tests only
#   scripts/run_tier1.sh --quick            # shorthand for -m "not slow" (CI)
set -euo pipefail
cd "$(dirname "$0")/.."
args=()
for arg in "$@"; do
  if [[ "$arg" == "--quick" ]]; then
    args+=(-m "not slow")
  else
    args+=("$arg")
  fi
done
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} exec python -m pytest -x -q "${args[@]+"${args[@]}"}"
