#!/usr/bin/env bash
# Tier-1 verification: the exact command from ROADMAP.md, runnable from any
# directory.  Extra pytest arguments pass through, e.g.
#   scripts/run_tier1.sh -m "not slow"      # skip experiment-scale benchmarks
#   scripts/run_tier1.sh tests/             # unit tests only
set -euo pipefail
cd "$(dirname "$0")/.."
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} exec python -m pytest -x -q "$@"
