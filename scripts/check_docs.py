#!/usr/bin/env python
"""Smoke-check every command quoted in README.md.

Extracts the commands from README.md's fenced code blocks and verifies each
one is actually runnable, without paying for a full execution:

* ``scripts/*.py`` -- run with ``--help`` and require exit status 0, so
  argument parsers and module imports are exercised;
* ``examples/*.py`` -- byte-compile (they have no CLI; running them is the
  figure harness's job);
* ``scripts/*.sh`` -- ``bash -n`` syntax check plus an executability check.

Any README command that names a file that does not exist fails the check --
documentation that drifts from the tree should break CI, which is the point
of the docs job.  Exit status: 0 when every quoted command passes.

Usage::

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import os
import py_compile
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
README = os.path.join(REPO, "README.md")

#: Matches the script/example path tokens inside quoted commands.
PATH_PATTERN = re.compile(r"\b((?:scripts|examples)/[\w./-]+\.(?:py|sh))\b")


def fenced_blocks(text: str):
    inside = False
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("```"):
            inside = not inside
            continue
        if inside:
            yield stripped


def check_python_help(path: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run([sys.executable, path, "--help"], cwd=REPO, env=env,
                          capture_output=True, text=True, timeout=120)
    if proc.returncode != 0:
        return f"`{path} --help` exited {proc.returncode}: {proc.stderr[-300:]}"
    return ""


def check_command_paths(command: str):
    """Yield error strings for one quoted command line."""
    for path in PATH_PATTERN.findall(command):
        full = os.path.join(REPO, path)
        if not os.path.exists(full):
            yield f"README quotes {path}, which does not exist"
            continue
        if path.endswith(".sh"):
            if not os.access(full, os.X_OK):
                yield f"{path} is not executable"
            proc = subprocess.run(["bash", "-n", full], capture_output=True,
                                  text=True)
            if proc.returncode != 0:
                yield f"`bash -n {path}` failed: {proc.stderr[-300:]}"
        elif path.startswith("examples/"):
            try:
                py_compile.compile(full, doraise=True)
            except py_compile.PyCompileError as error:
                yield f"{path} does not compile: {error}"
        else:
            error = check_python_help(path)
            if error:
                yield error


def main() -> int:
    with open(README) as handle:
        text = handle.read()
    commands = [line for line in fenced_blocks(text)
                if PATH_PATTERN.search(line)]
    if not commands:
        print("README.md quotes no runnable commands -- nothing to check?")
        return 1
    errors = []
    checked = set()
    for command in commands:
        key = tuple(PATH_PATTERN.findall(command))
        if key in checked:
            continue
        checked.add(key)
        command_errors = list(check_command_paths(command))
        errors.extend(command_errors)
        print(f"[{'FAIL' if command_errors else 'ok':>4}] {command}")
    if errors:
        print("\ndocs check FAILED:")
        for error in errors:
            print(f"  - {error}")
        return 1
    print(f"\ndocs check passed ({len(checked)} distinct quoted commands)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
