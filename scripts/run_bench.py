#!/usr/bin/env python
"""Wall-clock + simulated-cycle benchmark of the Figure 5.1-style queries.

Runs the microbenchmark queries (sequential range selection, indexed range
selection, sequential join) under every engine x layout combination
(tuple/vectorized x NSM/PAX) and emits a ``BENCH_<stamp>.json`` recording,
per configuration:

* ``wall_seconds`` -- best-of-``--repeat`` wall-clock time of the measured
  execution (the *simulator's* speed, which is what caps how large a
  Figure 5.1/5.2 grid we can afford), and
* ``cycles`` -- simulated ``CPU_CLK_UNHALTED`` (the *modelled* speed, which
  must not change when the simulator gets faster).

``--compare-to`` embeds a previous BENCH json (e.g. one captured before a
perf PR) and reports per-configuration speedups, so the perf trajectory of
the simulator is recorded alongside the numbers themselves.

Usage::

    PYTHONPATH=src python scripts/run_bench.py
    PYTHONPATH=src python scripts/run_bench.py --repeat 5 --compare-to BENCH_x.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.engine.database import Database
from repro.engine.session import Session
from repro.systems import SYSTEM_B
from repro.workloads.micro import MicroWorkload, MicroWorkloadConfig

ENGINES = ("tuple", "vectorized")
LAYOUTS = ("nsm", "pax")
QUERY_KINDS = ("SRS", "IRS", "SJ")

#: The configuration whose wall clock the perf acceptance criteria track.
HEADLINE = ("vectorized", "pax", "SRS")


def build_database(workload: MicroWorkload, layout: str) -> Database:
    db = Database()
    from repro.storage.schema import ColumnType

    columns = [("a1", ColumnType.INT32), ("a2", ColumnType.INT32),
               ("a3", ColumnType.INT32)]
    db.create_table("R", columns, record_size=workload.config.record_size,
                    layout_style=layout)
    db.load("R", workload.generate_r_rows())
    db.create_table("S", columns, record_size=workload.config.record_size,
                    layout_style=layout)
    db.load("S", workload.generate_s_rows())
    workload.create_selection_index(db)
    return db


def query_for(workload: MicroWorkload, kind: str):
    if kind == "SRS":
        return workload.sequential_range_selection()
    if kind == "IRS":
        return workload.indexed_range_selection()
    return workload.sequential_join()


def measure(workload: MicroWorkload, engine: str, layout: str, kind: str,
            repeat: int) -> dict:
    """Best-of-``repeat`` wall clock (fresh database and session per run)."""
    best = None
    cycles = rows = None
    for _ in range(repeat):
        db = build_database(workload, layout)
        session = Session(db, SYSTEM_B, os_interference=None, engine=engine)
        query = query_for(workload, kind)
        start = time.perf_counter()
        result = session.execute(query, warmup_runs=0)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
        cycles = result.counters.get("CPU_CLK_UNHALTED")
        rows = result.rows
    return {"engine": engine, "layout": layout, "query": kind,
            "wall_seconds": round(best, 6), "cycles": cycles,
            "result_rows": rows}


def git_revision() -> str:
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            text=True).strip()
    except Exception:
        return "unknown"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per configuration; best wall clock is kept")
    parser.add_argument("--scale", type=float, default=None,
                        help="microbenchmark scale override (default: workload default)")
    parser.add_argument("--label", default="",
                        help="free-form label recorded in the json (e.g. 'PR 1 baseline')")
    parser.add_argument("--compare-to", default=None, metavar="BENCH.json",
                        help="embed a previous BENCH json and report speedups")
    parser.add_argument("--out-dir", default=None,
                        help="directory for BENCH_<stamp>.json (default: repo root)")
    args = parser.parse_args()

    config = MicroWorkloadConfig() if args.scale is None else \
        MicroWorkloadConfig(scale=args.scale)
    workload = MicroWorkload(config)

    configs = []
    for engine in ENGINES:
        for layout in LAYOUTS:
            for kind in QUERY_KINDS:
                point = measure(workload, engine, layout, kind, args.repeat)
                configs.append(point)
                print(f"{engine:>10} x {layout} x {kind}: "
                      f"{point['wall_seconds']:.3f}s wall, "
                      f"{point['cycles']:,} simulated cycles")

    report = {
        "label": args.label,
        "git_revision": git_revision(),
        "python": platform.python_version(),
        "repeat": args.repeat,
        "scale": config.scale,
        "r_rows": config.r_rows,
        "system": SYSTEM_B.key,
        "headline": {"engine": HEADLINE[0], "layout": HEADLINE[1],
                     "query": HEADLINE[2]},
        "configs": configs,
    }

    if args.compare_to:
        with open(args.compare_to) as handle:
            baseline = json.load(handle)
        report["baseline"] = baseline
        speedups = {}
        baseline_points = {(c["engine"], c["layout"], c["query"]): c
                           for c in baseline.get("configs", ())}
        for point in configs:
            key = (point["engine"], point["layout"], point["query"])
            if key in baseline_points:
                before = baseline_points[key]["wall_seconds"]
                after = point["wall_seconds"]
                speedups["/".join(key)] = {
                    "before_wall_seconds": before,
                    "after_wall_seconds": after,
                    "speedup": round(before / after, 3) if after else None,
                    "cycles_before": baseline_points[key]["cycles"],
                    "cycles_after": point["cycles"],
                }
        report["speedups"] = speedups
        headline_key = "/".join(HEADLINE)
        if headline_key in speedups:
            print(f"\nheadline {headline_key}: "
                  f"{speedups[headline_key]['speedup']}x wall-clock speedup")

    stamp = time.strftime("%Y%m%d-%H%M%S")
    out_dir = args.out_dir or os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    path = os.path.join(out_dir, f"BENCH_{stamp}.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
