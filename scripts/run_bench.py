#!/usr/bin/env python
"""Wall-clock + simulated-cycle benchmark of the Figure 5.1-style queries.

Runs the microbenchmark queries (sequential range selection, indexed range
selection, sequential join) under every engine x layout combination
(tuple/vectorized x NSM/PAX), plus the adaptivity cells -- each adaptive
decision measured off/static/greedy on both layouts, recording greedy's
reduction over the planner-frozen static execution: ``ACS`` (skewed
3-conjunct selection, runtime conjunct reordering), ``AJS`` (skewed
planner-wrong join, runtime join-side selection) and ``ABS`` (50% selection
with a too-small configured vector, runtime batch sizing) -- plus the
memory-budget sweep ``SJB-inf/2x/1x/0.5x`` (the sequential join under a
``memory_budget_bytes`` of infinity / 2x / 1x / 0.5x the build side's
footprint, exercising the grace/hybrid spilling path; the ``inf`` cells
are gated cycle-identical to the plain ``SJ`` cells) -- and the
concurrent-serving cells ``SRV-serial``/``SRV-8`` (the open-loop mixed
arrival trace served back to back vs at concurrency 8 with plan/result
caches and shared scans; throughput and p50/p95/p99 latency recorded) --
and the TPC/sweep cells ``tpc/{nsm,pax}/{TPCD,TPCC}`` (the 17-query TPC-D
suite and the TPC-C transaction mix on the warmed per-layout TPC grids,
vectorized engine; TPC-C restores the data checkpoint per run since its
updates mutate pages in place) and ``sweep/{nsm,pax}/{SEL-50,RS-200}``
(one representative point of the selectivity and record-size sweeps per
layout) -- and emits a ``BENCH_<stamp>.json`` into ``benchmarks/results/``
(gitignored; override with ``--out-dir``) recording, per configuration:

* ``wall_seconds`` -- best-of-``--repeat`` wall-clock time of the measured
  execution (the *simulator's* speed, which is what caps how large a
  Figure 5.1/5.2 grid we can afford), and
* ``cycles`` -- simulated ``CPU_CLK_UNHALTED`` (the *modelled* speed, which
  must not change when the simulator gets faster).

The grid reuses **one warmed database build per layout** (the address space
is rolled back to the post-build checkpoint before every session, so the
cached path is bit-identical to a fresh build -- asserted per cell against
the repeat runs) and can dispatch independent cells to a fork-based process
pool (``--grid-workers``).  ``--parallelism N`` additionally runs each
vectorized cell through the morsel-parallel exchange; simulated cycles are
identical for every N by design.

``--compare-to`` embeds a previous BENCH json, prints a per-cell delta
table, and acts as a **regression gate**: the exit status is non-zero when
any cell's simulated cycles differ from the baseline or its wall clock
regresses by more than ``--tolerance`` (default 0.20 = 20%).

Usage::

    PYTHONPATH=src python scripts/run_bench.py
    PYTHONPATH=src python scripts/run_bench.py --repeat 5 --compare-to BENCH_x.json
    PYTHONPATH=src python scripts/run_bench.py --grid-workers 4 --parallelism 2
    PYTHONPATH=src python scripts/run_bench.py --cells 'serving/*'
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.engine.session import Session
from repro.execution.parallel import fork_available
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.hardware.counters import EventCounters
from repro.systems import SYSTEM_B
from repro.systems.vendors import oltp_variant, system_by_key
from repro.workloads.micro import MicroWorkloadConfig
from repro.workloads.serving import ServingTraceConfig, build_trace, run_open_loop
from repro.workloads.tpcc import TPCCConfig
from repro.workloads.tpcd import TPCDConfig

ENGINES = ("tuple", "vectorized")
LAYOUTS = ("nsm", "pax")
QUERY_KINDS = ("SRS", "IRS", "SJ")

#: Memory-budget sweep of the sequential join (vectorized engine only):
#: the same ``SJ`` join measured under ``memory_budget_bytes`` set to
#: infinity (``None`` -- the structural bypass, gated cycle-identical to
#: the plain ``SJ`` cell), then 2x / 1x / 0.5x of the build side's byte
#: footprint (``MicroWorkloadConfig.s_bytes``).  Finite budgets exercise
#: the grace/hybrid spilling join through the buffer pool's backing
#: store; each cell records the budget and the charged page I/O.
BUDGET_KINDS = ("SJB-inf", "SJB-2x", "SJB-1x", "SJB-0.5x")

#: Adaptivity modes measured on the adaptive cells: ``off`` anchors the
#: bit-identity contract of the legacy path, ``static`` runs the adaptive
#: machinery with the planner's decisions (the control arm), ``greedy``
#: adapts from runtime observations.  Three adaptive workloads:
#:
#: * ``ACS`` -- skewed-conjunct selection (PR 4): runtime conjunct
#:   reordering's misprediction/cycle reduction;
#: * ``AJS`` -- skewed join (build side pinned to the 30x larger R,
#:   modelling a stale-stats planner): runtime join-side selection flips to
#:   build on S; measured with one warm-up run so the collector's
#:   cardinality observations let greedy flip before wasting build work;
#: * ``ABS`` -- 50% selection with a deliberately too-small configured
#:   vector (32 rows): runtime batch sizing walks the bounded ladder from
#:   observed L1D pressure and recovers the amortisation.
ADAPTIVE_MODES = ("off", "static", "greedy")

#: Per-kind measurement knobs of the adaptive cells: which decision switch
#: to enable (for non-``off`` modes), the configured batch size, and the
#: warm-up discipline.
ADAPTIVE_KINDS = {
    "ACS": {},
    "AJS": {"adaptive_joins": True, "warmup_runs": 1},
    "ABS": {"adaptive_batching": True, "batch_size": 32},
}

#: Concurrent-serving cells: the open-loop mixed-class arrival trace
#: (:mod:`repro.workloads.serving`) driven through the serving layer.
#: ``SRV-serial`` serves the trace back to back (``max_concurrency=1``,
#: plan/result caches and shared scans all off -- per-query counts are
#: bit-identical to solo sessions, so its *total* cycles are gated like any
#: other cell); ``SRV-8`` serves the same trace at ``max_concurrency=8``
#: with every layer on.  Both record throughput and p50/p95/p99 latency
#: under the driver's virtual clock; the serving summary reports SRV-8's
#: throughput multiple over SRV-serial (the acceptance criterion is >= 2x).
SERVING_KINDS = ("SRV-serial", "SRV-8")
SERVING_QUERIES = 48

#: TPC cells: the full TPC-D 17-query suite and the TPC-C transaction mix
#: measured per layout on the warmed TPC grids (vectorized engine,
#: System B).  TPC-D restores the post-build address-space checkpoint per
#: run; TPC-C additionally restores the data checkpoint (raw page bytes),
#: since its updates mutate records in place -- both are asserted
#: repeat-identical, the runtime check that the warmed-grid path changes
#: nothing for an update-heavy workload either.
TPC_KINDS = ("TPCD", "TPCC")

#: Sweep cells: one representative point of each parameter sweep, per
#: layout -- ``SEL-50`` (the 50%-selectivity sequential selection against
#: the shared warmed build) and ``RS-200`` (the 200-byte record-size point
#: against its own warmed layout-pinned build).
SWEEP_KINDS = ("SEL-50", "RS-200")
SWEEP_RECORD_SIZE = 200

#: The configuration whose wall clock the perf acceptance criteria track.
HEADLINE = ("vectorized", "pax", "SRS")

#: Kernel backend(s) each grid cell is measured under.  Cells record the
#: *requested* knob value (plus the backend it resolved to), so a baseline
#: recorded with numpy installed still gates a numpy-less run: ``auto``
#: matches ``auto`` and the simulated cycles are backend-identical by
#: design.  Old baselines without the field compare as ``auto`` cells.
DEFAULT_KERNEL_BACKENDS = ("auto",)


def make_runner(scale: Optional[float], parallelism: int = 1) -> ExperimentRunner:
    """Runner for the bench grid, with every workload scaled from ``--scale``.

    ``--scale`` is the absolute microbenchmark scale; the TPC datasets (and
    the TPC-C transaction count) shrink by the same factor relative to
    their defaults, so a small ``--scale`` keeps the tpc/* cells as cheap
    as the micro cells.  The floors mirror ``ExperimentConfig``'s env-scale
    defaults.
    """
    micro = MicroWorkloadConfig() if scale is None else MicroWorkloadConfig(scale=scale)
    factor = 1.0 if scale is None else scale / MicroWorkloadConfig().scale
    tpcd = TPCDConfig(lineitem_rows=max(int(factor * 5_000), 300),
                      orders_rows=max(int(factor * 500), 60),
                      part_rows=max(int(factor * 200), 30),
                      supplier_rows=max(int(factor * 50), 15))
    tpcc = TPCCConfig(scale=TPCCConfig().scale * factor)
    return ExperimentRunner(ExperimentConfig(
        micro=micro, tpcd=tpcd, tpcc=tpcc,
        tpcc_transactions=max(int(120 * factor), 10),
        os_interference=False, parallelism=parallelism))


def query_for(workload, kind: str):
    if kind == "SRS":
        return workload.sequential_range_selection()
    if kind == "IRS":
        return workload.indexed_range_selection()
    if kind == "ACS":
        return workload.skewed_conjunct_selection()
    if kind == "AJS":
        return workload.skewed_join()
    if kind == "ABS":
        return workload.sequential_range_selection(0.5)
    if kind.startswith("SJB"):
        return workload.over_budget_join()
    return workload.sequential_join()


def budget_for(kind: str, s_bytes: int) -> Optional[int]:
    """Map an ``SJB-*`` kind to ``memory_budget_bytes`` (None = no budget)."""
    suffix = kind.split("-", 1)[1]
    if suffix == "inf":
        return None
    if suffix == "2x":
        return 2 * s_bytes
    if suffix == "1x":
        return s_bytes
    return max(s_bytes // 2, 1)


def measure_cell(runner: ExperimentRunner, engine: str, layout: str, kind: str,
                 repeat: int, adaptivity: str = "off",
                 kernel_backend: str = "auto",
                 profile: bool = False) -> dict:
    """Best-of-``repeat`` wall clock against the cached warmed build.

    Every run rolls the shared build's address space back to its post-build
    checkpoint, so run N is bit-identical to run 1 (and to a run against a
    freshly built database); the identity of rows and cycles across repeats
    is asserted, which is the runtime check that the cached-database path
    changes nothing.
    """
    query = query_for(runner.micro_workload, kind)
    knobs = ADAPTIVE_KINDS.get(kind, {})
    adaptive_on = adaptivity != "off"
    session_kwargs = {
        "adaptive_joins": adaptive_on and knobs.get("adaptive_joins", False),
        "adaptive_batching": adaptive_on and knobs.get("adaptive_batching",
                                                       False),
        "batch_size": knobs.get("batch_size"),
        "kernel_backend": kernel_backend,
    }
    budget = None
    if kind.startswith("SJB"):
        budget = budget_for(kind, runner.config.micro.s_bytes)
        session_kwargs["memory_budget_bytes"] = budget
    warmup_runs = knobs.get("warmup_runs", 0)
    best = None
    cycles = None
    rows = None
    counters = None
    io_stats = None
    # Adaptive greedy/epsilon decisions depend on the morsel partitioning
    # (only adaptivity="off" promises bit-identity to serial -- DESIGN.md),
    # so the adaptive cells are pinned to a serial session to keep their
    # cycles deterministic under --parallelism.  The budget cells pin too:
    # the spilling join's page-I/O schedule depends on ingest order, and a
    # serial session keeps the charged cycles deterministic.
    parallelism = 1 if (adaptivity != "off" or kind.startswith("SJB")) else None
    resolved_backend = None
    breakdown = None
    for _ in range(max(repeat, 1)):
        setup_start = time.perf_counter()
        with runner.grid_session(engine, layout, adaptivity=adaptivity,
                                 parallelism=parallelism,
                                 **session_kwargs) as session:
            resolved_backend = session.context.kernels.name
            setup_seconds = time.perf_counter() - setup_start
            start = time.perf_counter()
            result = session.execute(query, warmup_runs=warmup_runs)
            elapsed = time.perf_counter() - start
            run_io = dict(session.context.io_stats)
        if best is None or elapsed < best:
            best = elapsed
            if profile:
                # The measured execute() includes the cell's warm-up runs
                # (their count is recorded so the share is interpretable).
                breakdown = {"session_setup_seconds": round(setup_seconds, 6),
                             "execute_seconds": round(elapsed, 6),
                             "warmup_runs": warmup_runs}
        run_cycles = result.counters.get("CPU_CLK_UNHALTED")
        if cycles is not None and (run_cycles != cycles or result.rows != rows):
            raise AssertionError(
                f"cached-database run of {engine}/{layout}/{kind}/{adaptivity} "
                f"diverged: cycles {run_cycles} vs {cycles}, "
                f"rows equal: {result.rows == rows}")
        cycles = run_cycles
        rows = result.rows
        counters = result.counters
        io_stats = run_io
    point = {"engine": engine, "layout": layout, "query": kind,
             "adaptivity": adaptivity,
             "kernel_backend": kernel_backend,
             "resolved_kernel_backend": resolved_backend,
             "wall_seconds": round(best, 6), "cycles": cycles,
             "branch_mispredictions": counters.get("BR_MISS_PRED_RETIRED"),
             "result_rows": rows,
             "_counters": counters}
    if breakdown is not None:
        point["profile"] = breakdown
    if kind.startswith("SJB"):
        point["memory_budget_bytes"] = budget
        point["io_stats"] = io_stats
    return point


def measure_serving_cell(runner: ExperimentRunner, layout: str, kind: str,
                         repeat: int, kernel_backend: str = "auto") -> dict:
    """Best-of-``repeat`` open-loop serving run of the mixed arrival trace.

    Each repeat drives a **fresh** server over the same deterministic trace;
    the run's total simulated cycles and total result rows are asserted
    identical across repeats (the serving layers are count-deterministic
    regardless of how wall-clock timing shapes the admission rounds), while
    the best wall clock / its throughput and latency percentiles are kept.
    """
    trace = build_trace(runner.micro_workload,
                        ServingTraceConfig(queries=SERVING_QUERIES))
    concurrent = kind != "SRV-serial"
    best = None
    best_report = None
    cycles = None
    total_rows = None
    for _ in range(max(repeat, 1)):
        server = runner.serving_server(
            layout, max_concurrency=8 if concurrent else 1,
            plan_cache=concurrent, result_cache=concurrent,
            shared_scans=concurrent, kernel_backend=kernel_backend)
        start = time.perf_counter()
        report = run_open_loop(server, trace)
        elapsed = time.perf_counter() - start
        if cycles is not None and (report.total_cycles != cycles
                                   or report.total_rows != total_rows):
            raise AssertionError(
                f"serving/{layout}/{kind} diverged across repeats: cycles "
                f"{report.total_cycles} vs {cycles}, rows "
                f"{report.total_rows} vs {total_rows}")
        cycles = report.total_cycles
        total_rows = report.total_rows
        if best is None or elapsed < best:
            best = elapsed
            best_report = report
    return {"engine": "serving", "layout": layout, "query": kind,
            "adaptivity": "off",
            "kernel_backend": kernel_backend,
            "resolved_kernel_backend": kernel_backend,
            "wall_seconds": round(best, 6), "cycles": cycles,
            "branch_mispredictions":
                best_report.counters.get("BR_MISS_PRED_RETIRED"),
            "result_rows": total_rows,
            "serving": {
                "max_concurrency": 8 if concurrent else 1,
                "queries": best_report.queries,
                "rounds": best_report.rounds,
                "throughput_qps": round(best_report.throughput_qps, 3),
                "latency_p50": round(best_report.latency_p50, 6),
                "latency_p95": round(best_report.latency_p95, 6),
                "latency_p99": round(best_report.latency_p99, 6),
                "queue_depth_high_water":
                    best_report.stats.get("queue_depth_high_water", 0),
                "classes": {key: dict(value) for key, value
                            in sorted(best_report.classes.items())},
                "stats": best_report.stats,
            },
            "_counters": best_report.counters}


def measure_tpc_cell(runner: ExperimentRunner, layout: str, kind: str,
                     repeat: int, kernel_backend: str = "auto") -> dict:
    """Best-of-``repeat`` TPC run against the warmed per-layout TPC grid.

    Each repeat restores the post-build checkpoint(s) -- address space for
    the read-only TPC-D suite, address space *plus* raw page bytes for the
    update-heavy TPC-C mix -- and the identity of simulated cycles and
    result rows across repeats is asserted: the runtime check that warmed-
    grid reuse is invisible even when the workload mutates the pages.
    """
    best = None
    cycles = None
    rows = None
    counters = None
    resolved_backend = None
    transactions = None
    for _ in range(max(repeat, 1)):
        if kind == "TPCD":
            database, checkpoint = runner.tpcd_grid_database(layout)
            database.address_space.restore(checkpoint)
            start = time.perf_counter()
            with Session(database, system_by_key("B"), spec=runner.config.spec,
                         os_interference=runner.config.os_config(),
                         engine="vectorized",
                         kernel_backend=kernel_backend) as session:
                resolved_backend = session.context.kernels.name
                result = session.execute_suite(runner.tpcd_workload.queries(),
                                               warmup_runs=0, label="TPC-D")
            elapsed = time.perf_counter() - start
            run_cycles = result.counters.get("CPU_CLK_UNHALTED")
            run_rows = result.rows
            run_counters = result.counters
        else:
            database, workload, checkpoint, data = runner.tpcc_grid_database(layout)
            database.address_space.restore(checkpoint)
            database.data_restore(data)
            start = time.perf_counter()
            with Session(database, oltp_variant(system_by_key("B")),
                         spec=runner.config.spec,
                         os_interference=runner.config.os_config(),
                         engine="vectorized",
                         kernel_backend=kernel_backend) as session:
                resolved_backend = session.context.kernels.name
                run_counters, _, _, executed = workload.run(
                    session, transactions=runner.config.tpcc_transactions,
                    warmup_transactions=max(
                        runner.config.tpcc_transactions // 10, 5))
            elapsed = time.perf_counter() - start
            run_cycles = run_counters.get("CPU_CLK_UNHALTED")
            run_rows = executed
            transactions = executed
        if cycles is not None and (run_cycles != cycles or run_rows != rows):
            raise AssertionError(
                f"warmed TPC grid run of tpc/{layout}/{kind} diverged: "
                f"cycles {run_cycles} vs {cycles}, "
                f"rows equal: {run_rows == rows}")
        if best is None or elapsed < best:
            best = elapsed
        cycles = run_cycles
        rows = run_rows
        counters = run_counters
    point = {"engine": "tpc", "layout": layout, "query": kind,
             "adaptivity": "off",
             "kernel_backend": kernel_backend,
             "resolved_kernel_backend": resolved_backend,
             "wall_seconds": round(best, 6), "cycles": cycles,
             "branch_mispredictions": counters.get("BR_MISS_PRED_RETIRED"),
             "result_rows": rows if kind == "TPCD" else [],
             "_counters": counters}
    if transactions is not None:
        point["transactions"] = transactions
    return point


def measure_sweep_cell(runner: ExperimentRunner, layout: str, kind: str,
                       repeat: int, kernel_backend: str = "auto") -> dict:
    """Best-of-``repeat`` sweep-point run against its warmed layout build.

    ``SEL-50`` measures the 50%-selectivity sequential selection on the
    shared grid build; ``RS-200`` measures the default selection on the
    200-byte record-size build (its own per-(size, layout) warmed
    database).  Both assert repeat-identity of cycles and rows.
    """
    if kind == "SEL-50":
        workload = runner.micro_workload
        query = workload.sequential_range_selection(0.5)
    else:
        _, workload, _ = runner._record_size_grid_database(
            SWEEP_RECORD_SIZE, layout)
        query = workload.sequential_range_selection()
    best = None
    cycles = None
    rows = None
    counters = None
    resolved_backend = None
    for _ in range(max(repeat, 1)):
        if kind == "SEL-50":
            database, checkpoint = runner.grid_database(layout)
        else:
            database, _, checkpoint = runner._record_size_grid_database(
                SWEEP_RECORD_SIZE, layout)
        database.address_space.restore(checkpoint)
        start = time.perf_counter()
        with Session(database, system_by_key("B"), spec=runner.config.spec,
                     os_interference=runner.config.os_config(),
                     engine="vectorized",
                     kernel_backend=kernel_backend) as session:
            resolved_backend = session.context.kernels.name
            result = session.execute(query, warmup_runs=0)
        elapsed = time.perf_counter() - start
        run_cycles = result.counters.get("CPU_CLK_UNHALTED")
        if cycles is not None and (run_cycles != cycles or result.rows != rows):
            raise AssertionError(
                f"warmed sweep run of sweep/{layout}/{kind} diverged: "
                f"cycles {run_cycles} vs {cycles}, "
                f"rows equal: {result.rows == rows}")
        if best is None or elapsed < best:
            best = elapsed
        cycles = run_cycles
        rows = result.rows
        counters = result.counters
    return {"engine": "sweep", "layout": layout, "query": kind,
            "adaptivity": "off",
            "kernel_backend": kernel_backend,
            "resolved_kernel_backend": resolved_backend,
            "wall_seconds": round(best, 6), "cycles": cycles,
            "branch_mispredictions": counters.get("BR_MISS_PRED_RETIRED"),
            "result_rows": rows,
            "_counters": counters}


#: Runner inherited by forked grid workers.
_BENCH_RUNNER: Optional[ExperimentRunner] = None
_BENCH_REPEAT = 1
_BENCH_PROFILE = False


def _measure_any_cell(runner: ExperimentRunner,
                      cell: Tuple[str, str, str, str, str],
                      repeat: int, profile: bool) -> dict:
    engine, layout, kind, adaptivity, backend = cell
    if engine == "serving":
        return measure_serving_cell(runner, layout, kind, repeat=repeat,
                                    kernel_backend=backend)
    if engine == "tpc":
        return measure_tpc_cell(runner, layout, kind, repeat=repeat,
                                kernel_backend=backend)
    if engine == "sweep":
        return measure_sweep_cell(runner, layout, kind, repeat=repeat,
                                  kernel_backend=backend)
    return measure_cell(runner, engine, layout, kind, repeat=repeat,
                        adaptivity=adaptivity, kernel_backend=backend,
                        profile=profile)


def _measure_cell_task(cell: Tuple[str, str, str, str, str]) -> dict:
    point = _measure_any_cell(_BENCH_RUNNER, cell, _BENCH_REPEAT,
                              _BENCH_PROFILE)
    point["_counters"] = point["_counters"].as_dict()
    return point


def grid_cells(kernel_backends: Tuple[str, ...] = DEFAULT_KERNEL_BACKENDS,
               cells_filter: Optional[str] = None
               ) -> List[Tuple[str, str, str, str, str]]:
    """The 12 engine x layout x query cells plus the adaptivity,
    memory-budget, concurrent-serving, TPC (``tpc/*``) and sweep-point
    (``sweep/*``) cells, each measured per kernel backend.
    ``cells_filter`` keeps only the cells whose display name
    (``engine/layout/query[/adaptivity][/backend]``) matches the glob."""
    cells = [(engine, layout, kind, "off") for engine in ENGINES
             for layout in LAYOUTS for kind in QUERY_KINDS]
    cells.extend(("vectorized", layout, kind, mode)
                 for kind in ADAPTIVE_KINDS
                 for layout in LAYOUTS for mode in ADAPTIVE_MODES)
    cells.extend(("vectorized", layout, kind, "off")
                 for layout in LAYOUTS for kind in BUDGET_KINDS)
    cells.extend(("serving", layout, kind, "off")
                 for layout in LAYOUTS for kind in SERVING_KINDS)
    cells.extend(("tpc", layout, kind, "off")
                 for layout in LAYOUTS for kind in TPC_KINDS)
    cells.extend(("sweep", layout, kind, "off")
                 for layout in LAYOUTS for kind in SWEEP_KINDS)
    expanded = [cell + (backend,) for backend in kernel_backends
                for cell in cells]
    if cells_filter:
        expanded = [cell for cell in expanded
                    if fnmatch.fnmatchcase(_cell_tuple_name(cell),
                                           cells_filter)]
    return expanded


def _cell_tuple_name(cell: Tuple[str, str, str, str, str]) -> str:
    """Display name of a not-yet-measured cell (mirrors ``_cell_name``)."""
    engine, layout, kind, adaptivity, backend = cell
    name = f"{engine}/{layout}/{kind}"
    if adaptivity != "off":
        name += f"/{adaptivity}"
    if backend != "auto":
        name += f"/{backend}"
    return name


def run_grid(runner: ExperimentRunner, repeat: int, grid_workers: int,
             kernel_backends: Tuple[str, ...] = DEFAULT_KERNEL_BACKENDS,
             profile: bool = False,
             cells_filter: Optional[str] = None) -> List[dict]:
    """Measure all grid cells, serially or via a fork-based process pool."""
    cells = grid_cells(kernel_backends, cells_filter=cells_filter)
    if grid_workers > 1 and not fork_available():
        grid_workers = 1
    if grid_workers <= 1:
        points = []
        for cell in cells:
            point = _measure_any_cell(runner, cell, repeat, profile)
            point["_counters"] = point["_counters"].as_dict()
            points.append(point)
        return points
    # Pre-build every needed warmed database so forked workers inherit the
    # builds instead of rebuilding them per process.
    for layout in LAYOUTS:
        runner.grid_database(layout)
    for engine, layout, kind, _, _ in cells:
        if engine == "tpc" and kind == "TPCD":
            runner.tpcd_grid_database(layout)
        elif engine == "tpc":
            runner.tpcc_grid_database(layout)
        elif engine == "sweep" and kind == "RS-200":
            runner._record_size_grid_database(SWEEP_RECORD_SIZE, layout)
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor
    global _BENCH_RUNNER, _BENCH_REPEAT, _BENCH_PROFILE
    _BENCH_RUNNER, _BENCH_REPEAT, _BENCH_PROFILE = runner, repeat, profile
    try:
        with ProcessPoolExecutor(
                max_workers=min(grid_workers, len(cells)),
                mp_context=multiprocessing.get_context("fork")) as pool:
            return list(pool.map(_measure_cell_task, cells))
    finally:
        _BENCH_RUNNER = None


def merged_grid_counters(points: List[dict]) -> EventCounters:
    """Commutative merge of every cell's counters (grid-total events)."""
    total = EventCounters()
    for point in points:
        total.merge(EventCounters.from_dict(point["_counters"]))
    return total


def _cell_key(point: dict) -> Tuple[str, str, str, str, str]:
    """Identity of one grid cell; old baselines without the adaptivity
    (resp. kernel_backend) field compare as ``"off"`` (resp. ``"auto"``)
    cells -- the backend key records the *requested* knob, so a baseline
    recorded with numpy installed still matches a numpy-less run."""
    return (point["engine"], point["layout"], point["query"],
            point.get("adaptivity", "off"),
            point.get("kernel_backend", "auto"))


def _cell_name(point: dict) -> str:
    name = "/".join((point["engine"], point["layout"], point["query"]))
    adaptivity = point.get("adaptivity", "off")
    if adaptivity != "off":
        name += f"/{adaptivity}"
    backend = point.get("kernel_backend", "auto")
    if backend != "auto":
        name += f"/{backend}"
    return name


def adaptivity_summary(points: List[dict]) -> Dict[str, dict]:
    """Greedy-vs-static misprediction and cycle reductions per layout.

    This is the paper-facing payoff of the adaptive subsystem: the
    recorded evidence that each runtime decision (conjunct reordering on
    the ``ACS`` cells, join-side selection on ``AJS``, batch sizing on
    ``ABS``) removes simulated work that the planner-frozen (``static``)
    execution pays.  The ``ACS`` entries stay keyed by bare layout for
    continuity with earlier records; the newer decisions key as
    ``"<kind>/<layout>"``.
    """
    by_key = {_cell_key(p): p for p in points}
    backends = list(dict.fromkeys(p.get("kernel_backend", "auto")
                                  for p in points))
    summary: Dict[str, dict] = {}
    for kind in ADAPTIVE_KINDS:
        for layout in LAYOUTS:
            for backend in backends:
                static = by_key.get(("vectorized", layout, kind, "static",
                                     backend))
                greedy = by_key.get(("vectorized", layout, kind, "greedy",
                                     backend))
                if static is not None and greedy is not None:
                    break
            if static is None or greedy is None:
                continue
            label = layout if kind == "ACS" else f"{kind}/{layout}"
            summary[label] = {
                "static_mispredictions": static["branch_mispredictions"],
                "greedy_mispredictions": greedy["branch_mispredictions"],
                "misprediction_reduction": round(
                    1.0 - greedy["branch_mispredictions"]
                    / max(static["branch_mispredictions"], 1), 4),
                "static_cycles": static["cycles"],
                "greedy_cycles": greedy["cycles"],
                "cycle_reduction": round(
                    1.0 - greedy["cycles"] / max(static["cycles"], 1), 4),
            }
    return summary


def serving_summary(points: List[dict]) -> Dict[str, dict]:
    """Concurrent serving vs back-to-back serial, per layout.

    The paper-facing payoff of the serving layer: SRV-8 (concurrency 8,
    plan/result caches + shared scans) against SRV-serial (the same
    deterministic trace served back to back) — the throughput multiple is
    the acceptance criterion (>= 2x), with the latency percentiles and the
    cache/shared-scan hit counts recorded as evidence of *why*.
    """
    by_key = {_cell_key(p): p for p in points}
    backends = list(dict.fromkeys(p.get("kernel_backend", "auto")
                                  for p in points))
    summary: Dict[str, dict] = {}
    for layout in LAYOUTS:
        for backend in backends:
            serial = by_key.get(("serving", layout, "SRV-serial", "off",
                                 backend))
            concurrent = by_key.get(("serving", layout, "SRV-8", "off",
                                     backend))
            if serial is not None and concurrent is not None:
                break
        if serial is None or concurrent is None:
            continue
        serial_srv = serial["serving"]
        concurrent_srv = concurrent["serving"]
        summary[layout] = {
            "serial_throughput_qps": serial_srv["throughput_qps"],
            "serving_throughput_qps": concurrent_srv["throughput_qps"],
            "throughput_multiple": round(
                concurrent_srv["throughput_qps"]
                / max(serial_srv["throughput_qps"], 1e-9), 3),
            "serial_latency_p50": serial_srv["latency_p50"],
            "serving_latency_p50": concurrent_srv["latency_p50"],
            "serving_latency_p95": concurrent_srv["latency_p95"],
            "serving_latency_p99": concurrent_srv["latency_p99"],
            "result_cache_hits":
                concurrent_srv["stats"]["result_cache_hits"],
            "plan_cache_hits": concurrent_srv["stats"]["plan_cache_hits"],
            "shared_scan_reuses":
                concurrent_srv["stats"]["shared_scan_reuses"],
        }
    return summary


def budget_identity_violations(points: List[dict]) -> List[str]:
    """The no-budget spill knob must be a structural no-op.

    ``memory_budget_bytes=None`` leaves the vectorized join on the exact
    pre-existing code path, so each ``SJB-inf`` cell must report the same
    simulated cycles and row count as the plain ``SJ`` cell measured in
    the same grid.  Because the ``SJ`` cells are themselves gated
    cycle-identical against the committed baseline, this transitively
    pins the budget=infinity execution to the pre-spilling releases.
    Finite budgets are *expected* to differ (they pay charged page I/O)
    and are gated only against their own baselines by ``--compare-to``.
    """
    by_key = {_cell_key(p): p for p in points}
    backends = dict.fromkeys(p.get("kernel_backend", "auto") for p in points)
    violations: List[str] = []
    pairs = [(layout, backend) for layout in LAYOUTS for backend in backends]
    for layout, backend in pairs:
        inf = by_key.get(("vectorized", layout, "SJB-inf", "off", backend))
        plain = by_key.get(("vectorized", layout, "SJ", "off", backend))
        if inf is None or plain is None:
            continue
        if inf["cycles"] != plain["cycles"]:
            violations.append(
                f"vectorized/{layout}/SJB-inf: cycles diverged from SJ "
                f"({inf['cycles']:,} vs {plain['cycles']:,}) -- the "
                f"budget=None path is no longer a structural bypass")
        if inf["result_rows"] != plain["result_rows"]:
            violations.append(
                f"vectorized/{layout}/SJB-inf: rows diverged from SJ")
    return violations


# ---------------------------------------------------------------------------
# Regression gate
# ---------------------------------------------------------------------------
def compare_to_baseline(points: List[dict], baseline: dict,
                        tolerance: Optional[float]
                        ) -> Tuple[List[str], List[str], Dict[str, dict]]:
    """Per-cell delta table plus gate violations.

    A violation is raised when a cell's simulated cycles differ from the
    baseline (the model changed) or its wall clock regressed by more than
    ``tolerance`` (fractional; 0.2 = +20%).  ``tolerance=None`` disables
    the wall gate (used when cells were measured concurrently, where
    per-cell wall clocks are not comparable to a serial baseline); cycles
    always gate.  Cells absent from the baseline are reported but never
    gate.
    """
    baseline_points = {_cell_key(c): c for c in baseline.get("configs", ())}
    lines = [f"{'cell':>30s} {'wall before':>12s} {'wall after':>11s} "
             f"{'wall_speedup_vs_baseline':>24s}  cycles"]
    violations: List[str] = []
    speedups: Dict[str, dict] = {}
    for point in points:
        key = _cell_key(point)
        name = _cell_name(point)
        before = baseline_points.get(key)
        if before is None:
            lines.append(f"{name:>30s} {'-':>12s} {point['wall_seconds']:>11.3f} "
                         f"{'new':>24s}  {point['cycles']:,}")
            continue
        wall_before = before["wall_seconds"]
        wall_after = point["wall_seconds"]
        speedup = (wall_before / wall_after) if wall_after else None
        cycles_match = before["cycles"] == point["cycles"]
        cycle_note = "identical" if cycles_match else (
            f"CHANGED {before['cycles']:,} -> {point['cycles']:,}")
        speedup_note = (f"{speedup:>23.2f}x" if speedup is not None
                        else f"{'-':>24s}")
        lines.append(f"{name:>30s} {wall_before:>12.3f} {wall_after:>11.3f} "
                     f"{speedup_note}  {cycle_note}")
        speedups[name] = {
            "before_wall_seconds": wall_before,
            "after_wall_seconds": wall_after,
            "speedup": round(speedup, 3) if speedup else None,
            "wall_speedup_vs_baseline": round(speedup, 3) if speedup else None,
            "cycles_before": before["cycles"],
            "cycles_after": point["cycles"],
        }
        if not cycles_match:
            violations.append(f"{name}: simulated cycles changed "
                              f"({before['cycles']:,} -> {point['cycles']:,})")
        if tolerance is not None and wall_after > wall_before * (1.0 + tolerance):
            violations.append(
                f"{name}: wall clock regressed {wall_after:.3f}s vs "
                f"{wall_before:.3f}s (> {tolerance:.0%} tolerance)")
    return lines, violations, speedups


def git_revision() -> str:
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            text=True).strip()
    except Exception:
        return "unknown"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per configuration; best wall clock is kept")
    parser.add_argument("--scale", type=float, default=None,
                        help="microbenchmark scale override (default: workload default)")
    parser.add_argument("--label", default="",
                        help="free-form label recorded in the json (e.g. 'PR 1 baseline')")
    parser.add_argument("--compare-to", default=None, metavar="BENCH.json",
                        help="embed a previous BENCH json, print the per-cell delta "
                             "table and gate on it (non-zero exit on violation)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional wall-clock regression per cell "
                             "before the gate fails (default 0.20 = 20%%)")
    parser.add_argument("--grid-workers", type=int, default=1,
                        help="process-level parallelism across grid cells "
                             "(fork-based; 1 = serial)")
    parser.add_argument("--parallelism", type=int, default=1,
                        help="morsel-parallel workers inside each vectorized "
                             "session (cycles are identical for every value; "
                             "the adaptive ACS cells are always measured "
                             "serially, since greedy orderings depend on the "
                             "morsel partitioning)")
    parser.add_argument("--out-dir", default=None,
                        help="directory for BENCH_<stamp>.json "
                             "(default: benchmarks/results/, gitignored)")
    parser.add_argument("--kernel-backends", default="auto",
                        help="comma-separated kernel_backend values each grid "
                             "cell is measured under (auto, python, array; "
                             "default: auto)")
    parser.add_argument("--profile", action="store_true",
                        help="record a per-cell wall breakdown (session setup "
                             "vs measured execute) in each cell and print it")
    parser.add_argument("--cells", default=None, metavar="GLOB",
                        help="measure only the grid cells whose name "
                             "(engine/layout/query[/adaptivity][/backend]) "
                             "matches this glob, e.g. 'serving/*' or "
                             "'*/pax/SRS' (default: all cells)")
    args = parser.parse_args()
    kernel_backends = tuple(
        backend.strip() for backend in args.kernel_backends.split(",")
        if backend.strip()) or DEFAULT_KERNEL_BACKENDS

    grid_start = time.perf_counter()
    runner = make_runner(args.scale, parallelism=args.parallelism)
    build_start = time.perf_counter()
    for layout in LAYOUTS:
        runner.grid_database(layout)
    build_seconds = time.perf_counter() - build_start

    points = run_grid(runner, args.repeat, args.grid_workers,
                      kernel_backends=kernel_backends, profile=args.profile,
                      cells_filter=args.cells)
    if not points:
        print(f"no grid cells match --cells {args.cells!r}")
        return 1
    for point in points:
        line = (f"{_cell_name(point):>26}: {point['wall_seconds']:.3f}s wall, "
                f"{point['cycles']:,} simulated cycles, "
                f"{point['branch_mispredictions']:,} mispredictions")
        if "serving" in point:
            srv = point["serving"]
            line += (f", {srv['throughput_qps']:.1f} q/s, p50 "
                     f"{srv['latency_p50'] * 1000:.1f}ms, p95 "
                     f"{srv['latency_p95'] * 1000:.1f}ms, p99 "
                     f"{srv['latency_p99'] * 1000:.1f}ms "
                     f"({srv['queries']} queries, {srv['rounds']} rounds)")
        if "io_stats" in point:
            budget = point["memory_budget_bytes"]
            line += (f", budget={budget if budget is not None else 'inf'}, "
                     f"{point['io_stats']['page_reads']} page reads, "
                     f"{point['io_stats']['page_writes']} page writes")
        if "profile" in point:
            breakdown = point["profile"]
            line += (f" [setup {breakdown['session_setup_seconds']:.3f}s, "
                     f"execute {breakdown['execute_seconds']:.3f}s"
                     + (f" incl. {breakdown['warmup_runs']} warmup"
                        if breakdown["warmup_runs"] else "") + "]")
        print(line)
    grid_wall = time.perf_counter() - grid_start

    totals = merged_grid_counters(points)
    configs = []
    for point in points:
        point = dict(point)
        point.pop("_counters")
        configs.append(point)

    config = runner.config.micro
    report = {
        "label": args.label,
        "git_revision": git_revision(),
        "python": platform.python_version(),
        "repeat": args.repeat,
        "scale": config.scale,
        "r_rows": config.r_rows,
        "system": SYSTEM_B.key,
        "grid_workers": args.grid_workers,
        "parallelism": args.parallelism,
        "kernel_backends": list(kernel_backends),
        "grid_wall_seconds": round(grid_wall, 3),
        "db_build_seconds": round(build_seconds, 3),
        "db_builds": len(LAYOUTS),
        "grid_total_cycles": totals.get("CPU_CLK_UNHALTED"),
        "headline": {"engine": HEADLINE[0], "layout": HEADLINE[1],
                     "query": HEADLINE[2]},
        "adaptivity": adaptivity_summary(configs),
        "serving": serving_summary(configs),
        "configs": configs,
    }
    if args.cells:
        report["cells_filter"] = args.cells
    print(f"\ngrid wall: {grid_wall:.3f}s end-to-end "
          f"({build_seconds:.3f}s for {len(LAYOUTS)} database builds, "
          f"repeat={args.repeat}, grid_workers={args.grid_workers}, "
          f"parallelism={args.parallelism})")
    for layout, summary in report["adaptivity"].items():
        print(f"adaptivity {layout}: greedy vs static = "
              f"{summary['misprediction_reduction']:.1%} fewer mispredictions "
              f"({summary['static_mispredictions']:,} -> "
              f"{summary['greedy_mispredictions']:,}), "
              f"{summary['cycle_reduction']:.1%} fewer cycles")
    for layout, summary in report["serving"].items():
        print(f"serving {layout}: {summary['throughput_multiple']}x throughput "
              f"vs serial ({summary['serial_throughput_qps']:.1f} -> "
              f"{summary['serving_throughput_qps']:.1f} q/s; "
              f"{summary['result_cache_hits']} result-cache hits, "
              f"{summary['plan_cache_hits']} plan-cache hits, "
              f"{summary['shared_scan_reuses']} shared-scan reuses)")

    exit_code = 0
    budget_violations = budget_identity_violations(configs)
    report["budget_gate_violations"] = budget_violations
    if budget_violations:
        print("\nBUDGET IDENTITY GATE FAILED:")
        for violation in budget_violations:
            print(f"  - {violation}")
        exit_code = 1
    if args.compare_to:
        with open(args.compare_to) as handle:
            baseline = json.load(handle)
        report["baseline"] = baseline
        # Concurrently measured cells share the machine, so their wall
        # clocks are not comparable to a serial baseline; gate cycles only.
        tolerance = args.tolerance if args.grid_workers <= 1 else None
        if tolerance is None:
            print("\n(grid_workers > 1: wall-clock gate disabled, "
                  "cycles still gated)")
        lines, violations, speedups = compare_to_baseline(
            configs, baseline, tolerance)
        report["speedups"] = speedups
        report["gate_violations"] = violations
        print()
        for line in lines:
            print(line)
        headline_key = "/".join(HEADLINE)
        if headline_key in speedups:
            print(f"\nheadline {headline_key}: "
                  f"{speedups[headline_key]['speedup']}x wall-clock speedup")
        if "grid_wall_seconds" in baseline:
            before = baseline["grid_wall_seconds"]
            print(f"grid end-to-end: {before:.3f}s -> {grid_wall:.3f}s "
                  f"({before / grid_wall:.2f}x)" if grid_wall else "")
        if violations:
            print("\nREGRESSION GATE FAILED:")
            for violation in violations:
                print(f"  - {violation}")
            exit_code = 1
        elif tolerance is None:
            print("\nregression gate passed (cycles identical; wall not gated)")
        else:
            print(f"\nregression gate passed (tolerance {tolerance:.0%})")

    stamp = time.strftime("%Y%m%d-%H%M%S")
    out_dir = args.out_dir or os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "benchmarks", "results")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{stamp}.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"\nwrote {path}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
