#!/usr/bin/env python
"""Trace one query and print where its cycles go, operator by operator.

Runs a single microbenchmark query through the warmed grid build with
tracing enabled and renders the per-operator span tree: every node shows
its self/inclusive simulated cycles, rows and pulls, spill I/O, and the
paper's stall breakdown (computation / memory / branch / resource shares)
attributed to that node alone.

Usage::

    PYTHONPATH=src python scripts/run_trace.py --query SJ-skew --layout pax
    PYTHONPATH=src python scripts/run_trace.py --query SJ --engine tuple \\
        --tracing full --json trace.json --chrome trace.chrome.json

``--json`` writes the nested trace dict (one object per span, with
breakdown shares); ``--chrome`` writes Chrome ``trace_event`` format —
load it at ``chrome://tracing`` or https://ui.perfetto.dev to see the
spans on a (host-time) timeline annotated with simulated counts.

Tracing never perturbs the simulation: ``--tracing off`` runs the exact
untraced path, and ``spans``/``full`` change zero simulated counts (the
differential tests in ``tests/test_observability.py`` enforce this).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.observability import chrome_trace, render_trace, trace_to_dict
from repro.workloads.micro import MicroWorkloadConfig

QUERY_KINDS = ("SRS", "IRS", "SJ", "SJ-skew", "ACS")


def build_query(workload, kind: str):
    if kind == "SRS":
        return workload.sequential_range_selection()
    if kind == "IRS":
        return workload.indexed_range_selection()
    if kind == "SJ":
        return workload.sequential_join()
    if kind == "SJ-skew":
        return workload.skewed_join()
    if kind == "ACS":
        return workload.skewed_conjunct_selection()
    raise ValueError(f"unknown query kind {kind!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Trace one query and print its per-operator span tree.")
    parser.add_argument("--engine", choices=("tuple", "vectorized"),
                        default="vectorized")
    parser.add_argument("--layout", choices=("nsm", "pax"), default="pax")
    parser.add_argument("--query", choices=QUERY_KINDS, default="SJ-skew")
    parser.add_argument("--tracing", choices=("spans", "full"),
                        default="full",
                        help="span granularity (full adds replay subspans "
                             "and per-pull events)")
    parser.add_argument("--scale", type=float, default=0.002,
                        help="microbenchmark scale factor (fraction of the "
                             "paper's table sizes)")
    parser.add_argument("--workers", type=int, default=1,
                        help="morsel-parallel worker count (1 = serial)")
    parser.add_argument("--no-breakdown", action="store_true",
                        help="omit the per-node stall-breakdown lines")
    parser.add_argument("--json", metavar="PATH",
                        help="write the nested trace dict as JSON")
    parser.add_argument("--chrome", metavar="PATH",
                        help="write Chrome trace_event JSON "
                             "(chrome://tracing / Perfetto)")
    args = parser.parse_args(argv)

    runner = ExperimentRunner(ExperimentConfig(
        micro=MicroWorkloadConfig(scale=args.scale), os_interference=False))
    session = runner.grid_session(args.engine, args.layout,
                                  parallelism=args.workers,
                                  tracing=args.tracing)
    query = build_query(runner.micro_workload, args.query)
    result = session.execute(query)

    spec = session.spec
    processor = session.context.processor
    print(f"# {args.query} engine={args.engine} layout={args.layout} "
          f"scale={args.scale} workers={args.workers} "
          f"tracing={args.tracing}")
    print(f"# rows={len(result.rows)} "
          f"cycles={result.counters.get('CPU_CLK_UNHALTED')}")
    print(render_trace(result.trace, spec, processor,
                       show_breakdown=not args.no_breakdown))

    if args.json:
        payload = trace_to_dict(result.trace, spec, processor,
                                include_counters=True)
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.chrome:
        payload = chrome_trace(result.trace, spec, processor)
        Path(args.chrome).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.chrome}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
