#!/usr/bin/env python
"""Reproduce every figure and table of the paper in three commands.

The artifact pipeline (:mod:`repro.experiments.artifact`) drives the full
reproduction -- the microbenchmark breakdown figures (5.1--5.5) per page
layout (NSM and PAX), the record-size and selectivity sweeps per layout,
the TPC-D suite and TPC-C mix on the warmed-build grid under the modern
engine matrix, and the configuration tables (4.1/4.2) -- and stages its
outputs under one results directory (default
``benchmarks/results/artifact/``)::

    raw/measurements.json   run_all: every measurement, structured
    csv/<artifact>.csv      csv:     one CSV per figure/table (canonical)
    plots/<artifact>.png    plot:    bar charts, only if matplotlib exists

Stages are separable so the expensive measurement pass runs once; ``csv``
and ``plot`` re-derive from the persisted raw JSON.  ``all`` chains the
three.  matplotlib is strictly optional: without it the ``plot`` stage
prints a notice and exits successfully.

``--scale`` picks the dataset preset: ``ci`` finishes in seconds (the CI
smoke job), ``small`` is a quick local run, ``full`` is the repo's default
reduced-paper scale.  ``--workers 4`` adds morsel-parallel arms to the TPC
matrices (simulated counts are identical for every worker count by
design); ``--adaptivity`` adds a greedy-adaptive TPC-D arm.

Usage::

    PYTHONPATH=src python scripts/run_artifact.py run_all --scale small
    PYTHONPATH=src python scripts/run_artifact.py csv
    PYTHONPATH=src python scripts/run_artifact.py plot
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from pathlib import Path

from repro.experiments.artifact import (ArtifactError, ArtifactOptions,
                                        emit_csvs, render_plots, run_all)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "benchmarks" / "results" / "artifact"
STAGES = ("run_all", "csv", "plot", "all")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("stage", choices=STAGES,
                        help="pipeline stage to run (all = run_all + csv + plot)")
    parser.add_argument("--scale", choices=("ci", "small", "full"),
                        default="full", help="dataset scale preset")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="results directory (default benchmarks/results/artifact)")
    parser.add_argument("--workers", type=int, default=1,
                        help="add a morsel-parallel arm with N workers to the "
                             "TPC matrices (counts identical by design)")
    parser.add_argument("--adaptivity", action="store_true",
                        help="add a greedy-adaptive TPC-D matrix arm")
    args = parser.parse_args(argv)

    workers = (1,) if args.workers <= 1 else (1, args.workers)
    options = ArtifactOptions(workers=workers, adaptivity=args.adaptivity)

    started = time.time()
    try:
        if args.stage in ("run_all", "all"):
            run_all(args.out, scale=args.scale, options=options)
        if args.stage in ("csv", "all"):
            written = emit_csvs(args.out)
            print(f"[artifact] {len(written)} CSVs verified non-empty")
        if args.stage in ("plot", "all"):
            rendered = render_plots(args.out)
            if rendered:
                print(f"[artifact] {len(rendered)} plots rendered")
    except ArtifactError as error:
        print(f"[artifact] ERROR: {error}", file=sys.stderr)
        return 1
    print(f"[artifact] {args.stage} done in {time.time() - started:.1f}s "
          f"under {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
