"""Section 1: the paper's headline claims, recomputed over every measurement."""

import pytest

from repro.experiments.figures import headline_claims


@pytest.mark.figure("headline_claims")
def test_headline_claims(regenerate, runner):
    figure = regenerate(headline_claims, runner)
    data = figure.data

    # "On the average, half the execution time is spent in stalls."
    assert data["average stall share of execution time"] >= 0.50
    assert data["minimum stall share"] >= 0.40

    # "In all cases, 90% of the memory stalls are due to second-level cache
    # data misses and first-level instruction cache misses."  The reproduction
    # averages ~85-90% with a per-query floor around 70%.
    assert data["average (TL1I+TL2D) share of memory stalls"] >= 0.80
    assert data["minimum (TL1I+TL2D) share of memory stalls"] >= 0.65

    # "About 20% of the stalls are caused by subtle implementation details
    # (e.g. branch mispredictions)" -- i.e. roughly 10-15% of execution time.
    assert 0.04 <= data["average branch misprediction share"] <= 0.20
