"""Figure 5.5: dependency (TDEP) versus functional-unit (TFU) stalls."""

import pytest

from repro.experiments.figures import figure_5_5


@pytest.mark.figure("figure_5_5")
def test_figure_5_5(regenerate, runner):
    figure = regenerate(figure_5_5, runner)
    tdep = figure.data["TDEP"]
    tfu = figure.data["TFU"]

    # Dependency stalls are the most important resource stall for B, C and D
    # on every query ...
    for system in ("B", "C", "D"):
        for kind, dep_share in tdep[system].items():
            assert dep_share > tfu[system][kind], f"{system}/{kind}"
            assert 0.0 < dep_share < 0.25
    # ... while System A's range selections are the exception: functional-unit
    # contention dominates.
    assert tfu["A"]["SRS"] > tdep["A"]["SRS"]

    # Both components stay within the 0-25% band of the paper's figure.
    for component in (tdep, tfu):
        for system, per_query in component.items():
            for kind, share in per_query.items():
                assert 0.0 < share < 0.30, f"{system}/{kind}"


@pytest.mark.slow
@pytest.mark.parametrize("layout", ("nsm", "pax"))
def test_figure_5_5_by_layout(regenerate, runner, layout):
    """The TDEP-over-TFU ordering is pipeline behaviour, layout-independent."""
    figure = regenerate(figure_5_5, runner, layout=layout)
    tdep = figure.data["TDEP"]
    tfu = figure.data["TFU"]
    for system in ("B", "C", "D"):
        for kind, dep_share in tdep[system].items():
            assert dep_share > tfu[system][kind], f"{layout}/{system}/{kind}"
    assert tfu["A"]["SRS"] > tdep["A"]["SRS"]
    for component in (tdep, tfu):
        for system, per_query in component.items():
            for kind, share in per_query.items():
                assert 0.0 < share < 0.35, f"{layout}/{system}/{kind}"
