"""Table 4.1: cache characteristics of the simulated Pentium II Xeon."""

import pytest

from repro.experiments.figures import table_4_1
from repro.hardware import PENTIUM_II_XEON


@pytest.mark.figure("table_4_1")
def test_table_4_1(regenerate):
    figure = regenerate(table_4_1, PENTIUM_II_XEON)
    l1 = figure.data["L1 (split)"]
    l2 = figure.data["L2"]
    # The configuration the whole study depends on (paper Table 4.1).
    assert l1["Cache size"] == "16KB Data / 16KB Instruction"
    assert l1["Cache line size"] == "32 bytes"
    assert l1["Associativity"] == "4-way"
    assert l1["Miss Penalty"] == "4 cycles (w/ L2 hit)"
    assert l1["Misses outstanding"] == "4"
    assert l2["Cache size"] == "512KB"
    assert l2["Associativity"] == "4-way"
    assert l2["Write Policy"] == "Write-back"
