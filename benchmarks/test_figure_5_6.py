"""Figure 5.6: CPI breakdown of the simple query versus the TPC-D average.

The paper's methodological claim: the clock-per-instruction breakdown of the
10% sequential range selection closely resembles the TPC-D average for the
same system, and CPI rates for both workloads fall in the 1.2-1.8 band (our
simulated platform lands slightly below, 1.0-1.3; the shape comparison is the
reproduction target).
"""

import pytest

from repro.experiments.figures import figure_5_6


@pytest.mark.figure("figure_5_6")
def test_figure_5_6(regenerate, runner):
    figure = regenerate(figure_5_6, runner)
    srs = figure.data["SRS"]
    tpcd = figure.data["TPC-D"]
    assert set(srs) == set(tpcd) == {"A", "B", "D"}

    for system in srs:
        srs_cpi, tpcd_cpi = srs[system], tpcd[system]
        # CPI in a sensible band for both workloads, and close to each other.
        assert 0.8 <= srs_cpi["total"] <= 2.0
        assert 0.8 <= tpcd_cpi["total"] <= 2.0
        assert abs(srs_cpi["total"] - tpcd_cpi["total"]) <= 0.35
        # The component shapes match: each group's share of CPI differs by
        # less than 15 percentage points between the two workloads.
        for group in ("computation", "memory", "branch", "resource"):
            srs_share = srs_cpi[group] / srs_cpi["total"]
            tpcd_share = tpcd_cpi[group] / tpcd_cpi["total"]
            assert abs(srs_share - tpcd_share) <= 0.15, f"{system}/{group}"


@pytest.mark.slow
@pytest.mark.parametrize("layout", ("nsm", "pax"))
def test_figure_5_6_by_layout(regenerate, runner, layout):
    """Micro-vs-TPC-D CPI resemblance survives the layout change (grid)."""
    figure = regenerate(figure_5_6, runner, layout=layout)
    srs = figure.data["SRS"]
    tpcd = figure.data["TPC-D"]
    assert set(srs) == set(tpcd) == {"A", "B", "D"}
    for system in srs:
        assert 0.8 <= srs[system]["total"] <= 2.0, f"{layout}/{system}"
        assert 0.8 <= tpcd[system]["total"] <= 2.0, f"{layout}/{system}"
        assert abs(srs[system]["total"] - tpcd[system]["total"]) <= 0.40, \
            f"{layout}/{system}"
