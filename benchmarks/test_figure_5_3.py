"""Figure 5.3: instructions retired per record for every system and query."""

import pytest

from repro.experiments.figures import figure_5_3


@pytest.mark.figure("figure_5_3")
def test_figure_5_3(regenerate, runner):
    figure = regenerate(figure_5_3, runner)
    data = figure.data

    # System A retires the fewest instructions per record on the sequential
    # selection (the paper's explanation for its tiny TL1I there).
    srs = {system: values["SRS"] for system, values in data.items()}
    assert srs["A"] == min(srs.values())

    # Late-90s commercial engines spend hundreds to thousands of instructions
    # per record; the paper's figure tops out around 16,000 for the join.
    for system, values in data.items():
        for kind, instructions in values.items():
            assert 300 <= instructions <= 20_000, f"{system}/{kind}: {instructions:.0f}"

    # The join path is heavier than the plain sequential scan everywhere, and
    # System D has the heaviest join machinery of the four.
    for system, values in data.items():
        assert values["SJ"] > values["SRS"]
    sj = {system: values["SJ"] for system, values in data.items()}
    assert sj["D"] == max(sj.values())

    # System A has no IRS bar (it did not use the index).
    assert "IRS" not in data["A"]
    for system in ("B", "C", "D"):
        assert data[system]["IRS"] > data[system]["SRS"]


@pytest.mark.slow
@pytest.mark.parametrize("layout", ("nsm", "pax"))
def test_figure_5_3_by_layout(regenerate, runner, layout):
    """Instruction counts per record hold their shape under both layouts."""
    figure = regenerate(figure_5_3, runner, layout=layout)
    data = figure.data
    assert figure.name == f"figure_5_3_{layout}"
    for system, values in data.items():
        for kind, instructions in values.items():
            assert 300 <= instructions <= 20_000, \
                f"{layout}/{system}/{kind}: {instructions:.0f}"
        assert values["SJ"] > values["SRS"]
    assert "IRS" not in data["A"]
