"""Ablations suggested by the paper's discussion.

Section 5.2.1 notes that L2 caches were growing (the Xeon could take up to
2 MB) and that data stalls should shrink once the working set fits; Section
5.3 cites work showing that a much larger BTB (16K entries) improves the BTB
miss rate for database workloads.  Both knobs exist in the simulated platform,
so the corresponding what-if experiments are benchmarked here.
"""

import pytest

from repro.engine import Session
from repro.hardware import larger_btb_xeon, larger_l2_xeon
from repro.systems import SYSTEM_C


@pytest.mark.figure("ablation_larger_l2")
def test_larger_l2_removes_data_stalls(benchmark, runner):
    workload = runner.micro_workload
    database = runner.micro_database
    query = workload.sequential_range_selection(0.10)

    def run():
        session = Session(database, SYSTEM_C, spec=larger_l2_xeon(2048))
        return session.execute(query, warmup_runs=1)

    big_l2 = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = runner.micro_result("C", "SRS")
    # With a 2 MB L2 the (600 KB) relation fits after warm-up, so the L2 data
    # stall component collapses and total cycles drop.
    assert big_l2.breakdown.components["TL2D"] < 0.25 * baseline.breakdown.components["TL2D"]
    assert big_l2.breakdown.total_cycles < baseline.breakdown.total_cycles
    print(f"\nAblation: 512KB L2 TL2D={baseline.breakdown.components['TL2D']:.0f} cycles, "
          f"2MB L2 TL2D={big_l2.breakdown.components['TL2D']:.0f} cycles")


@pytest.mark.figure("ablation_larger_btb")
def test_larger_btb_reduces_btb_misses(benchmark, runner):
    workload = runner.micro_workload
    database = runner.micro_database
    query = workload.sequential_range_selection(0.10)

    def run():
        session = Session(database, SYSTEM_C, spec=larger_btb_xeon(16384))
        return session.execute(query, warmup_runs=0)

    big_btb = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = runner.micro_result("C", "SRS")
    # The dynamically simulated branch sites see a BTB that no longer thrashes;
    # the bulk population's miss rate is a profile constant, so the overall
    # rate improves but does not vanish.
    assert big_btb.metrics.btb_miss_rate <= baseline.metrics.btb_miss_rate
    print(f"\nAblation: 512-entry BTB miss rate={baseline.metrics.btb_miss_rate:.2f}, "
          f"16K-entry BTB miss rate={big_btb.metrics.btb_miss_rate:.2f}")
