"""Ablations suggested by the paper's discussion.

Section 5.2.1 notes that L2 caches were growing (the Xeon could take up to
2 MB) and that data stalls should shrink once the working set fits; Section
5.3 cites work showing that a much larger BTB (16K entries) improves the BTB
miss rate for database workloads.  Both knobs exist in the simulated platform,
so the corresponding what-if experiments are benchmarked here.

The engine ablation goes the other way: instead of changing the hardware, it
changes the *software* iteration model.  The paper blames tuple-at-a-time
interpretation for much of the computation, L1 instruction-stall and branch
time; re-running the Figure 5.1 scan and join queries with the vectorized
batch engine quantifies exactly that attribution.
"""

import pytest

from repro.engine import Session
from repro.experiments.figures import engine_ablation
from repro.hardware import larger_btb_xeon, larger_l2_xeon
from repro.systems import SYSTEM_C


@pytest.mark.figure("ablation_larger_l2")
def test_larger_l2_removes_data_stalls(benchmark, runner):
    workload = runner.micro_workload
    database = runner.micro_database
    query = workload.sequential_range_selection(0.10)

    def run():
        session = Session(database, SYSTEM_C, spec=larger_l2_xeon(2048))
        return session.execute(query, warmup_runs=1)

    big_l2 = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = runner.micro_result("C", "SRS")
    # With a 2 MB L2 the (600 KB) relation fits after warm-up, so the L2 data
    # stall component collapses and total cycles drop.
    assert big_l2.breakdown.components["TL2D"] < 0.25 * baseline.breakdown.components["TL2D"]
    assert big_l2.breakdown.total_cycles < baseline.breakdown.total_cycles
    print(f"\nAblation: 512KB L2 TL2D={baseline.breakdown.components['TL2D']:.0f} cycles, "
          f"2MB L2 TL2D={big_l2.breakdown.components['TL2D']:.0f} cycles")


@pytest.mark.figure("ablation_larger_btb")
def test_larger_btb_reduces_btb_misses(benchmark, runner):
    workload = runner.micro_workload
    database = runner.micro_database
    query = workload.sequential_range_selection(0.10)

    def run():
        session = Session(database, SYSTEM_C, spec=larger_btb_xeon(16384))
        return session.execute(query, warmup_runs=0)

    big_btb = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = runner.micro_result("C", "SRS")
    # The dynamically simulated branch sites see a BTB that no longer thrashes;
    # the bulk population's miss rate is a profile constant, so the overall
    # rate improves but does not vanish.
    assert big_btb.metrics.btb_miss_rate <= baseline.metrics.btb_miss_rate
    print(f"\nAblation: 512-entry BTB miss rate={baseline.metrics.btb_miss_rate:.2f}, "
          f"16K-entry BTB miss rate={big_btb.metrics.btb_miss_rate:.2f}")


@pytest.mark.slow
@pytest.mark.figure("ablation_vectorized_engine")
def test_vectorized_engine_amortises_interpretation_overhead(benchmark, runner):
    """Tuple vs vectorized on the Figure 5.1-style scan and join queries.

    The vectorized engine must (a) return identical answers, (b) charge
    strictly fewer interpreted routine invocations, and (c) spend less on
    simulated computation and instruction stalls -- the components the paper
    attributes to per-tuple interpretation -- while the L2 *data* stalls,
    which come from the NSM data layout, stay essentially untouched.
    """
    result = benchmark.pedantic(engine_ablation, args=(runner,),
                                rounds=1, iterations=1)
    print()
    print(result.text)
    for kind in ("SRS", "SJ"):
        for system in ("B", "D"):
            tuple_result = runner.micro_result(system, kind, engine="tuple")
            vec_result = runner.micro_result(system, kind, engine="vectorized")
            assert vec_result.rows == tuple_result.rows
            assert (vec_result.total_routine_invocations
                    < tuple_result.total_routine_invocations)
            tuple_components = tuple_result.breakdown.components
            vec_components = vec_result.breakdown.components
            assert vec_components["TC"] < tuple_components["TC"]
            assert vec_components["TL1I"] < tuple_components["TL1I"]
            assert vec_components["TB"] < tuple_components["TB"]
            # Data stalls are a property of the page layout and access
            # style, not the iteration model: the vectorized engine does
            # not magically shrink them (only PAX does).  The small band
            # absorbs second-order L2 effects of the shrunken instruction
            # footprint competing less for L2 capacity.
            assert (0.85 * tuple_components["TL2D"]
                    < vec_components["TL2D"]
                    <= 1.15 * tuple_components["TL2D"])
