"""Section 5.5: the TPC-C (OLTP) observations.

Paper text reproduced: "CPI rates for TPC-C workloads range from 2.5 to 4.5,
and 60%-80% of the time is spent in memory-related stalls ... The TPC-C
memory stalls breakdown shows dominance of the L2 data and instruction
stalls."
"""

import pytest

from repro.experiments.figures import tpcc_summary


@pytest.mark.figure("tpcc_section_5_5")
def test_tpcc_observations(regenerate, runner):
    figure = regenerate(tpcc_summary, runner)
    for system, values in figure.data.items():
        assert 2.0 <= values["CPI"] <= 5.0, f"{system}: CPI={values['CPI']:.2f}"
        assert 0.55 <= values["memory stall share"] <= 0.90, system
        # L2 (data + instruction) misses dominate the memory stalls.
        assert values["L2 share of memory stalls"] >= 0.50, system

    # The OLTP mix is much heavier per instruction than the DSS microbenchmark.
    for system in figure.data:
        srs = runner.micro_result(system, "SRS")
        assert figure.data[system]["CPI"] > srs.metrics.cpi * 1.5, system
