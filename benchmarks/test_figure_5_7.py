"""Figure 5.7: cache-related stall breakdown, simple query versus TPC-D."""

import pytest

from repro.experiments.figures import figure_5_7


@pytest.mark.figure("figure_5_7")
def test_figure_5_7(regenerate, runner):
    figure = regenerate(figure_5_7, runner)
    for workload in ("SRS", "TPC-D"):
        for system, shares in figure.data[workload].items():
            assert sum(shares.values()) == pytest.approx(1.0)
            # L1 instruction stalls and L2 data stalls dominate the
            # cache-related stall time for both workloads.
            assert shares["L1 I-stalls"] + shares["L2 D-stalls"] >= 0.70, (
                f"{workload}/{system}")
            assert shares["L2 I-stalls"] <= 0.12
            assert shares["L1 D-stalls"] <= 0.25
    # First-level instruction stalls dominate the TPC-D workload for the two
    # systems whose DSS executors are instruction-heavy (B and D), which is
    # the paper's argument for instruction-cache optimisations in DSS.
    for system in ("B", "D"):
        tpcd = figure.data["TPC-D"][system]
        assert tpcd["L1 I-stalls"] == max(tpcd.values())


@pytest.mark.slow
@pytest.mark.parametrize("layout", ("nsm", "pax"))
def test_figure_5_7_by_layout(regenerate, runner, layout):
    """The cache-stall split keeps its shape per layout (warmed grid)."""
    figure = regenerate(figure_5_7, runner, layout=layout)
    for workload in ("SRS", "TPC-D"):
        for system, shares in figure.data[workload].items():
            assert sum(shares.values()) == pytest.approx(1.0), \
                f"{layout}/{workload}/{system}"
            assert shares["L1 I-stalls"] + shares["L2 D-stalls"] >= 0.60, \
                f"{layout}/{workload}/{system}"
            assert shares["L2 I-stalls"] <= 0.15
    # Instruction stalls keep dominating the DSS workload for B and D --
    # PAX helps data locality, not the instruction footprint.
    for system in ("B", "D"):
        tpcd = figure.data["TPC-D"][system]
        assert tpcd["L1 I-stalls"] == max(tpcd.values()), f"{layout}/{system}"
