"""Figure 5.1: query execution time breakdown into TC / TM / TB / TR.

Paper observations reproduced here:

* computation is usually less than half of the execution time -- the
  processor spends most of its time stalled, for every system and query;
* branch-misprediction stalls account for roughly 10--20% of execution time
  on systems B, C and D;
* resource stalls contribute 15--30% for B, C, D while System A shows both
  the smallest memory/branch stalls and the largest resource-stall share;
* System A has no indexed-range-selection bar (its optimiser does not use
  the index).
"""

import pytest

from repro.experiments.figures import figure_5_1


@pytest.mark.figure("figure_5_1")
def test_figure_5_1(regenerate, runner):
    figure = regenerate(figure_5_1, runner)
    data = figure.data

    # System A is missing from the indexed selection, as in the paper.
    assert set(data["SRS"]) == {"A", "B", "C", "D"}
    assert set(data["IRS"]) == {"B", "C", "D"}
    assert set(data["SJ"]) == {"A", "B", "C", "D"}

    stall_shares = []
    for kind, per_system in data.items():
        for system, shares in per_system.items():
            assert sum(shares.values()) == pytest.approx(1.0)
            computation = shares["Computation"]
            stall = 1.0 - computation
            stall_shares.append(stall)
            # "the computation time is usually less than half the execution time"
            assert computation < 0.55, f"{system}/{kind}: computation={computation:.2f}"
            assert shares["Memory stalls"] > 0.10, f"{system}/{kind}"
            assert shares["Resource stalls"] > 0.05, f"{system}/{kind}"

    # On average (across systems and queries) at least half the time is stalls.
    assert sum(stall_shares) / len(stall_shares) >= 0.50

    # Branch mispredictions: significant for B, C and D (roughly 10-20%),
    # smallest for System A.
    for kind in ("SRS", "SJ"):
        branch = {system: shares["Branch mispredictions"]
                  for system, shares in data[kind].items()}
        assert branch["A"] == min(branch.values())
        for system in ("B", "C", "D"):
            assert 0.05 <= branch[system] <= 0.25, f"{system}/{kind}: {branch[system]:.2f}"

    # Resource stalls: System A shows the largest share on every query it runs.
    for kind in ("SRS", "SJ"):
        resource = {system: shares["Resource stalls"]
                    for system, shares in data[kind].items()}
        assert resource["A"] == max(resource.values())
        assert 0.15 <= resource["A"] <= 0.45
        for system in ("B", "C", "D"):
            assert 0.05 <= resource[system] <= 0.35, f"{system}/{kind}"


@pytest.mark.slow
@pytest.mark.figure("figure_5_1_layouts")
def test_figure_5_1_by_layout(regenerate, runner):
    """The breakdown per page layout, through the warmed-build grid."""
    figure = regenerate(figure_5_1, runner, layouts=("nsm", "pax"))
    data = figure.data
    assert set(data) == {"nsm", "pax"}

    for layout, per_kind in data.items():
        assert set(per_kind["SRS"]) == {"A", "B", "C", "D"}
        assert set(per_kind["IRS"]) == {"B", "C", "D"}
        for kind, per_system in per_kind.items():
            for system, shares in per_system.items():
                assert sum(shares.values()) == pytest.approx(1.0), \
                    f"{layout}/{kind}/{system}"
                assert all(share >= 0.0 for share in shares.values())

    # PAX's minipage organisation improves the spatial locality of the
    # narrow sequential scan, so its memory-stall share never grows.
    for system in ("A", "B", "C", "D"):
        nsm = data["nsm"]["SRS"][system]["Memory stalls"]
        pax = data["pax"]["SRS"][system]["Memory stalls"]
        assert pax <= nsm * 1.02, f"{system}: nsm={nsm:.3f} pax={pax:.3f}"
