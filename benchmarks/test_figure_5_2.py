"""Figure 5.2: contributions of the five memory components to TM.

Paper observations reproduced here:

* roughly 90% of the memory stall time comes from L1 instruction misses plus
  L2 data misses, across all systems and queries;
* L1 D-cache stalls, L2 instruction stalls and ITLB stalls are insignificant;
* System B is the exception on L2 data stalls for the sequential selection
  (its data access is optimised at the second cache level), so its memory
  stalls are dominated by the L1 I-cache component.
"""

import pytest

from repro.experiments.figures import figure_5_2


@pytest.mark.figure("figure_5_2")
def test_figure_5_2(regenerate, runner):
    figure = regenerate(figure_5_2, runner)
    data = figure.data

    dominant_shares = []
    for kind, per_system in data.items():
        for system, shares in per_system.items():
            assert sum(shares.values()) == pytest.approx(1.0)
            dominant = shares["L1 I-stalls"] + shares["L2 D-stalls"]
            dominant_shares.append(dominant)
            # The two dominant components cover (nearly) all of TM everywhere.
            assert dominant >= 0.70, f"{system}/{kind}: {dominant:.2f}"
            # The minor components stay minor.
            assert shares["L2 I-stalls"] <= 0.12, f"{system}/{kind}"
            assert shares["ITLB stalls"] <= 0.10, f"{system}/{kind}"
            assert shares["L1 D-stalls"] <= 0.25, f"{system}/{kind}"

    # "In all cases, 90% of the memory stalls are due to ..." -- on average the
    # reproduction lands at ~0.9 (per-query minimum bounded above at 0.70).
    assert sum(dominant_shares) / len(dominant_shares) >= 0.82

    # System B's sequential selection: L2 data stalls are insignificant and L1
    # instruction stalls dominate; the other systems lean on L2 data stalls.
    srs = data["SRS"]
    assert srs["B"]["L2 D-stalls"] == min(s["L2 D-stalls"] for s in srs.values())
    assert srs["B"]["L1 I-stalls"] > srs["B"]["L2 D-stalls"]
    for system in ("A", "C", "D"):
        assert srs[system]["L2 D-stalls"] >= 0.20, system


@pytest.mark.slow
@pytest.mark.figure("figure_5_2_layouts")
def test_figure_5_2_by_layout(regenerate, runner):
    """The memory-stall split per page layout (warmed-build grid)."""
    figure = regenerate(figure_5_2, runner, layouts=("nsm", "pax"))
    data = figure.data
    assert set(data) == {"nsm", "pax"}

    for layout, per_kind in data.items():
        for kind, per_system in per_kind.items():
            for system, shares in per_system.items():
                assert sum(shares.values()) == pytest.approx(1.0), \
                    f"{layout}/{kind}/{system}"
                # The minor components stay minor under both layouts.
                assert shares["L2 I-stalls"] <= 0.15, f"{layout}/{kind}/{system}"
                assert shares["ITLB stalls"] <= 0.12, f"{layout}/{kind}/{system}"

    # PAX's whole point: the narrow sequential scan stops hauling unused
    # fields through L2, so the L2 data share of memory stalls drops for
    # every system that was paying it under NSM.
    for system in ("A", "C", "D"):
        nsm = data["nsm"]["SRS"][system]["L2 D-stalls"]
        pax = data["pax"]["SRS"][system]["L2 D-stalls"]
        assert pax < nsm, f"{system}: nsm={nsm:.3f} pax={pax:.3f}"
