"""Figure 5.4: branch misprediction rates; TB and TL1I versus selectivity."""

import pytest

from repro.experiments.figures import figure_5_4_left, figure_5_4_right


@pytest.mark.figure("figure_5_4_left")
def test_figure_5_4_left(regenerate, runner):
    figure = regenerate(figure_5_4_left, runner)
    data = figure.data
    for system, per_query in data.items():
        for kind, rate in per_query.items():
            assert 0.005 <= rate <= 0.30, f"{system}/{kind}: {rate:.3f}"
    # System A's leaner, more predictable paths mispredict the least.
    srs = {system: values["SRS"] for system, values in data.items()}
    assert srs["A"] == min(srs.values())
    # The misprediction rate does not vary much across query types for a
    # given system (the paper: "does not vary significantly with record size
    # or selectivity").
    for system, per_query in data.items():
        rates = list(per_query.values())
        assert max(rates) - min(rates) < 0.05


@pytest.mark.figure("figure_5_4_right")
def test_figure_5_4_right(regenerate, runner):
    figure = regenerate(figure_5_4_right, runner, "D")
    data = figure.data
    assert set(data) == {"0%", "1%", "5%", "10%", "50%", "100%"}
    tb = {label: values["Branch mispred. stalls"] for label, values in data.items()}
    l1i = {label: values["L1 I-cache stalls"] for label, values in data.items()}
    # Both stall classes grow as the selectivity grows from 0% to 50%
    # (the paper's point is that they move together).
    assert tb["50%"] > tb["0%"]
    assert tb["10%"] >= tb["0%"]
    assert l1i["100%"] >= l1i["0%"]
    # ... and they stay within the same band the paper plots (0-20%).
    for label in data:
        assert 0.0 < tb[label] < 0.25
        assert 0.0 < l1i[label] < 0.45


@pytest.mark.slow
@pytest.mark.parametrize("layout", ("nsm", "pax"))
def test_figure_5_4_left_by_layout(regenerate, runner, layout):
    """Branch behaviour is control-flow, not data-placement: the layout
    leaves every misprediction rate in the paper's band."""
    figure = regenerate(figure_5_4_left, runner, layout=layout)
    for system, per_query in figure.data.items():
        for kind, rate in per_query.items():
            assert 0.005 <= rate <= 0.30, f"{layout}/{system}/{kind}: {rate:.3f}"
        rates = list(per_query.values())
        assert max(rates) - min(rates) < 0.05


@pytest.mark.slow
@pytest.mark.parametrize("layout", ("nsm", "pax"))
def test_figure_5_4_right_by_layout(regenerate, runner, layout):
    """TB and TL1I still move together when the selectivity grows, per layout."""
    figure = regenerate(figure_5_4_right, runner, "D", layout=layout)
    data = figure.data
    assert set(data) == {"0%", "1%", "5%", "10%", "50%", "100%"}
    tb = {label: values["Branch mispred. stalls"] for label, values in data.items()}
    l1i = {label: values["L1 I-cache stalls"] for label, values in data.items()}
    assert tb["50%"] > tb["0%"]
    assert l1i["100%"] >= l1i["0%"]
    for label in data:
        assert 0.0 < tb[label] < 0.25
        assert 0.0 < l1i[label] < 0.45
