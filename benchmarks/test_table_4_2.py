"""Table 4.2: the measurement method of every stall-time component."""

import pytest

from repro.experiments.figures import table_4_2


@pytest.mark.figure("table_4_2")
def test_table_4_2(regenerate):
    figure = regenerate(table_4_2)
    methods = figure.data
    assert methods["TC"]["method"].lower().startswith("estimated minimum")
    assert "4 cycles" in methods["TL1D"]["method"]
    assert methods["TL1I"]["method"] == "actual stall time"
    assert "memory latency" in methods["TL2D"]["method"]
    assert "memory latency" in methods["TL2I"]["method"]
    assert methods["TDTLB"]["method"] == "Not measured"
    assert "32 cycles" in methods["TITLB"]["method"]
    assert "17 cycles" in methods["TB"]["method"]
    assert methods["TFU"]["method"] == "actual stall time"
    assert methods["TDEP"]["method"] == "actual stall time"
    assert methods["TOVL"]["method"] == "Not measured"
