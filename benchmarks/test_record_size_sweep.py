"""Section 5.2: the effect of the record size (20-200 bytes).

Paper observations: TL2D grows with the record size for all systems (the
referenced fields of consecutive records move further apart); somewhat
surprisingly, the L1 instruction misses grow too (more OS interrupts and page
boundary crossings per record); execution time per record grows with record
size (by 2.5-4x in the paper; the reproduction shows the same monotone trend
with a smaller magnitude because the profiled instruction path length does
not grow with the record size).
"""

import pytest

from repro.experiments.figures import record_size_sweep


@pytest.mark.figure("record_size_sweep")
def test_record_size_sweep(regenerate, runner):
    figure = regenerate(record_size_sweep, runner)
    for system, columns in figure.data.items():
        sizes = sorted(columns, key=lambda label: int(label.rstrip("B")))
        tl2d = [columns[size]["TL2D cycles/record"] for size in sizes]
        l1i = [columns[size]["L1I misses/record"] for size in sizes]
        cycles = [columns[size]["cycles/record"] for size in sizes]

        # L2 data stalls per record increase strictly and strongly with size.
        assert all(later > earlier for earlier, later in zip(tl2d, tl2d[1:])), system
        assert tl2d[-1] >= 3.0 * tl2d[0], system

        # L1 instruction misses per record also increase (OS interference and
        # page-boundary crossings), though far less dramatically.
        assert l1i[-1] > l1i[0], system

        # Execution time per record increases with the record size.
        assert all(later > earlier for earlier, later in zip(cycles, cycles[1:])), system


@pytest.mark.slow
@pytest.mark.parametrize("layout", ("nsm", "pax"))
def test_record_size_sweep_by_layout(regenerate, runner, layout):
    """The record-size trends hold per layout on the warmed-build grid.

    Each (size, layout) point gets its own grid build; the monotone growth
    of L2 data stalls and of cycles per record is a property of the data
    geometry, so it must survive the PAX reorganisation too.
    """
    figure = regenerate(record_size_sweep, runner, layout=layout)
    assert figure.name == f"record_size_sweep_{layout}"
    for system, columns in figure.data.items():
        sizes = sorted(columns, key=lambda label: int(label.rstrip("B")))
        tl2d = [columns[size]["TL2D cycles/record"] for size in sizes]
        cycles = [columns[size]["cycles/record"] for size in sizes]
        assert all(later > earlier for earlier, later in zip(tl2d, tl2d[1:])), \
            f"{layout}/{system}"
        assert all(later > earlier
                   for earlier, later in zip(cycles, cycles[1:])), \
            f"{layout}/{system}"
