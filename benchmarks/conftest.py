"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures through the
shared :class:`~repro.experiments.runner.ExperimentRunner`, which caches the
underlying measurements so that e.g. Figures 5.1, 5.2, 5.3 and 5.5 (which all
draw on the same eleven query runs) cost one pass over the workload rather
than four.

The runner is session-scoped; individual benchmarks wrap their figure
function in ``benchmark.pedantic(..., rounds=1, iterations=1)`` because a
single figure regeneration is itself an expensive, deterministic simulation --
re-running it dozens of times (pytest-benchmark's default calibration) would
add nothing but wall-clock time.

Environment knobs:

``REPRO_BENCH_SCALE``
    Multiplies the workload scales (default 1.0).  ``REPRO_BENCH_SCALE=0.25``
    gives a quick smoke run; values above 1 approach the paper's full sizes
    at a proportional cost in simulation time.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, ExperimentRunner


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark as regenerating one paper figure/table")


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """The shared, result-caching experiment runner at benchmark scale."""
    return ExperimentRunner(ExperimentConfig())


@pytest.fixture
def regenerate(benchmark):
    """Run a figure function exactly once under pytest-benchmark timing."""

    def _regenerate(function, *args, **kwargs):
        result = benchmark.pedantic(function, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        print()
        print(result.text)
        return result

    return _regenerate
