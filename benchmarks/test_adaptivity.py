"""The adaptivity experiment: runtime conjunct reordering, measured on the
simulated branch unit.

The paper attributes a large, selectivity-insensitive share of execution
time to branch mispredictions (Section 5.3); the skewed-conjunct selection
is designed so that the static (planner) conjunct order pays an
unpredictable 50/50 data branch on ~90% of the records, while the greedy
runtime order short-circuits ~95% of the records past it.  The figure
regenerated here records the misprediction and cycle delta on both page
layouts -- the paper-facing payoff of the :mod:`repro.adaptive` subsystem.
"""

import pytest

from repro.experiments.figures import figure_adaptivity


@pytest.mark.slow
@pytest.mark.figure("figure_adaptivity")
def test_adaptive_ordering_reduces_mispredictions_and_cycles(regenerate, runner):
    result = regenerate(figure_adaptivity, runner)
    for layout in ("nsm", "pax"):
        per_mode = result.data[layout]
        off, static = per_mode["off"], per_mode["static"]
        greedy, epsilon = per_mode["greedy"], per_mode["epsilon"]
        # Identical answers in every mode.
        assert (off["result rows"] == static["result rows"]
                == greedy["result rows"] == epsilon["result rows"])
        # The greedy ordering removes mispredictions and cycles that the
        # same adaptive charging pays under the static (planner) order.
        assert greedy["branch mispredictions"] < static["branch mispredictions"]
        assert greedy["branch stall cycles"] < static["branch stall cycles"]
        assert greedy["total cycles"] < static["total cycles"]
        # Exploration costs epsilon a little versus pure greedy, but it must
        # stay far below the static order's misprediction bill.
        assert epsilon["branch mispredictions"] < static["branch mispredictions"]
        reductions = result.data["greedy_vs_static"][layout]
        assert reductions["misprediction reduction"] > 0.10
        assert reductions["cycle reduction"] > 0.0
